"""Unit tests for timeline analysis."""

import pytest

from repro.config.parallelism import ParallelismConfig, PipelineSchedule
from repro.config.system import single_node
from repro.errors import SimulationError
from repro.sim.analysis import (critical_device, device_profiles,
                                exposed_dp_fraction, pipeline_bubble_time,
                                stage_utilization_profile, summarize,
                                _interval_overlap, _merge_intervals)
from repro.sim.engine import simulate
from repro.sim.estimator import VTrain
from repro.sim.results import SimulationResult, TimelineEvent


def predict_with_timeline(model, plan, training):
    vtrain = VTrain(single_node(), check_memory_feasibility=False)
    graph = vtrain.build_graph(model, plan, training)
    return simulate(graph, record_timeline=True)


class TestIntervalHelpers:
    def test_merge_overlapping(self):
        merged = _merge_intervals([(0, 2), (1, 3), (5, 6)])
        assert merged == [(0, 3), (5, 6)]

    def test_merge_empty(self):
        assert _merge_intervals([]) == []

    def test_overlap(self):
        a = [(0.0, 4.0), (6.0, 8.0)]
        b = [(2.0, 7.0)]
        assert _interval_overlap(a, b) == pytest.approx(3.0)

    def test_disjoint_overlap_is_zero(self):
        assert _interval_overlap([(0, 1)], [(2, 3)]) == 0.0


class TestProfiles:
    def test_requires_timeline(self, tiny_model, training):
        vtrain = VTrain(single_node())
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        graph = vtrain.build_graph(tiny_model, plan, training)
        result = simulate(graph)  # no timeline
        with pytest.raises(SimulationError):
            device_profiles(result)

    def test_profiles_cover_all_stages(self, tiny_model, training):
        plan = ParallelismConfig(tensor=1, data=2, pipeline=4)
        result = predict_with_timeline(tiny_model, plan, training)
        profiles = device_profiles(result)
        assert sorted(profiles) == [0, 1, 2, 3]

    def test_busy_plus_idle_bounded_by_iteration(self, tiny_model, training):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        result = predict_with_timeline(tiny_model, plan, training)
        for profile in device_profiles(result).values():
            busy = profile.compute_busy + profile.tp_comm
            assert busy + profile.idle == pytest.approx(
                result.iteration_time, rel=1e-6)

    def test_no_tp_comm_when_t1(self, tiny_model, training):
        plan = ParallelismConfig(tensor=1, data=8, pipeline=1)
        result = predict_with_timeline(tiny_model, plan, training)
        for profile in device_profiles(result).values():
            assert profile.tp_comm == 0.0


class TestBubble:
    def test_deeper_pipeline_more_bubble(self, tiny_model, training):
        shallow = predict_with_timeline(
            tiny_model, ParallelismConfig(tensor=1, data=8, pipeline=1),
            training)
        deep = predict_with_timeline(
            tiny_model, ParallelismConfig(tensor=1, data=2, pipeline=4,
                                          micro_batch_size=8), training)
        shallow_frac = pipeline_bubble_time(shallow) / shallow.iteration_time
        deep_frac = pipeline_bubble_time(deep) / deep.iteration_time
        assert deep_frac > shallow_frac

    def test_stage_profile_length(self, tiny_model, training):
        plan = ParallelismConfig(tensor=1, data=2, pipeline=4)
        result = predict_with_timeline(tiny_model, plan, training)
        profile = stage_utilization_profile(result)
        assert len(profile) == 4
        assert all(0.0 <= u <= 1.0 for u in profile)


class TestExposure:
    def test_bucketing_hides_most_dp_comm(self, small_model, training):
        plan = ParallelismConfig(tensor=1, data=8, pipeline=1,
                                 micro_batch_size=1,
                                 gradient_bucketing=True,
                                 num_gradient_buckets=8)
        result = predict_with_timeline(small_model, plan, training)
        overlapped_fraction = 1.0 - exposed_dp_fraction(result)
        assert overlapped_fraction > 0.3

    def test_no_bucketing_exposes_more(self, small_model, training):
        bucketed = predict_with_timeline(
            small_model,
            ParallelismConfig(tensor=1, data=8, pipeline=1,
                              micro_batch_size=1, gradient_bucketing=True,
                              num_gradient_buckets=8), training)
        exposed = predict_with_timeline(
            small_model,
            ParallelismConfig(tensor=1, data=8, pipeline=1,
                              micro_batch_size=1, gradient_bucketing=False),
            training)
        assert exposed_dp_fraction(exposed) > exposed_dp_fraction(bucketed)

    def test_no_dp_comm_reports_zero(self, tiny_model, training):
        plan = ParallelismConfig(tensor=2, data=1, pipeline=4)
        result = predict_with_timeline(tiny_model, plan, training)
        assert exposed_dp_fraction(result) == 0.0


class TestEdgeCases:
    """Degenerate inputs the analysis helpers must handle exactly."""

    def test_merge_zero_duration_intervals(self):
        assert _merge_intervals([(1.0, 1.0), (1.0, 2.0)]) == [(1.0, 2.0)]
        # a lone zero-duration interval survives as itself
        assert _merge_intervals([(3.0, 3.0)]) == [(3.0, 3.0)]

    def test_merge_touching_intervals(self):
        assert _merge_intervals([(0.0, 1.0), (1.0, 2.0)]) == [(0.0, 2.0)]

    def test_merge_contained_interval(self):
        assert _merge_intervals([(0.0, 5.0), (1.0, 2.0)]) == [(0.0, 5.0)]

    def test_empty_recorded_timeline(self):
        result = SimulationResult(iteration_time=0.0, num_tasks=0,
                                  device_timeline={}, device_busy={},
                                  events=[])
        assert device_profiles(result) == {}
        assert pipeline_bubble_time(result) == 0.0
        assert exposed_dp_fraction(result) == 0.0
        assert stage_utilization_profile(result) == []

    def test_critical_device_requires_devices(self):
        result = SimulationResult(iteration_time=0.0, num_tasks=0,
                                  device_timeline={}, device_busy={},
                                  events=[])
        with pytest.raises(SimulationError, match="no devices"):
            critical_device(result)

    def test_zero_duration_events_profile(self):
        events = [
            TimelineEvent(task_id=0, device=0, stream="compute",
                          kind="compute", label="f0", start=0.0, finish=0.0),
            TimelineEvent(task_id=1, device=0, stream="compute",
                          kind="compute", label="f1", start=0.0, finish=2.0),
        ]
        result = SimulationResult(iteration_time=2.0, num_tasks=2,
                                  device_timeline={0: 2.0},
                                  device_busy={0: {"compute": 2.0}},
                                  events=events)
        profile = device_profiles(result)[0]
        assert profile.compute_busy == pytest.approx(2.0)
        assert profile.idle == pytest.approx(0.0)
        assert profile.compute_utilization == pytest.approx(1.0)

    def test_zero_iteration_time_summary_has_no_division_error(self):
        result = SimulationResult(iteration_time=0.0, num_tasks=0,
                                  device_timeline={0: 0.0}, device_busy={},
                                  events=[])
        summary = summarize(result)
        assert summary["avg_bubble_fraction"] == 0.0
        assert summary["critical_device"] == 0.0


class TestSummary:
    def test_summary_keys(self, tiny_model, training):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        result = predict_with_timeline(tiny_model, plan, training)
        summary = summarize(result)
        assert set(summary) == {"iteration_time", "avg_bubble_s",
                                "avg_bubble_fraction", "exposed_dp_fraction",
                                "avg_tp_comm_s", "critical_device"}
        assert summary["iteration_time"] > 0

    def test_critical_device_valid(self, tiny_model, training):
        plan = ParallelismConfig(tensor=1, data=2, pipeline=4,
                                 schedule=PipelineSchedule.GPIPE)
        result = predict_with_timeline(tiny_model, plan, training)
        assert 0 <= critical_device(result) < 4
