"""Integration tests for the multi-tenant case study (Figures 12-14).

Uses hand-built throughput profiles with the structural property the
real ones have — the "vTrain" profile dominates the "ElasticFlow"
profile pointwise, converging at large allocations — so the scheduling
claims can be verified quickly and deterministically without running
the expensive profile builders.
"""

import pytest

from repro.cluster import (ClusterSimulator, ElasticFlowScheduler,
                           ThroughputProfile, average_jct,
                           deadline_satisfactory_ratio, makespan,
                           makespan_trace, synthesize_trace)

#: Baseline (DP-only) profiles: sub-linear scaling, capped top end.
EF_PROFILES = {
    "Megatron 18.4B": ThroughputProfile("Megatron 18.4B", (
        (8, 0.0040), (16, 0.0079), (32, 0.0155), (64, 0.0300),
        (128, 0.0570), (256, 0.105), (512, 0.185), (1024, 0.300))),
    "Megatron 39.1B": ThroughputProfile("Megatron 39.1B", (
        (16, 0.0028), (32, 0.0055), (64, 0.0106), (128, 0.0200),
        (256, 0.0370), (512, 0.0650), (1024, 0.105))),
    "Megatron 81.2B": ThroughputProfile("Megatron 81.2B", (
        (32, 0.0024), (64, 0.0047), (128, 0.0090), (256, 0.0168),
        (512, 0.0300), (1024, 0.0500))),
}

#: vTrain profiles: ~15-20% faster at small/medium allocations,
#: converging at the top (the measured relationship).
VT_PROFILES = {
    name: ThroughputProfile(name, tuple(
        (gpus, rate * (1.18 if gpus < profile.max_gpus else 1.02))
        for gpus, rate in profile.table))
    for name, profile in EF_PROFILES.items()
}


def run_both(jobs):
    results = {}
    for label, profiles in (("ef", EF_PROFILES), ("vt", VT_PROFILES)):
        scheduler = ElasticFlowScheduler(profiles, total_gpus=1024)
        results[label] = ClusterSimulator(scheduler).run(jobs)
    return results


class TestDeadlines:
    @pytest.mark.parametrize("trace_id", [1, 2, 3])
    def test_vtrain_never_worse(self, trace_id):
        jobs = synthesize_trace(trace_id, 48, EF_PROFILES)
        results = run_both(jobs)
        assert deadline_satisfactory_ratio(results["vt"]) >= \
            deadline_satisfactory_ratio(results["ef"])

    def test_all_jobs_accounted_for(self):
        jobs = synthesize_trace(5, 32, EF_PROFILES)
        results = run_both(jobs)
        for result in results.values():
            assert result.num_jobs == 32
            for outcome in result.outcomes:
                assert outcome.completed or outcome.terminated

    def test_light_load_satisfies_everyone(self):
        """A couple of jobs on 1,024 GPUs should all meet deadlines."""
        jobs = synthesize_trace(7, 2, EF_PROFILES)
        results = run_both(jobs)
        assert deadline_satisfactory_ratio(results["vt"]) == 1.0


class TestJct:
    @pytest.mark.parametrize("trace_id", [1, 2, 3])
    def test_vtrain_reduces_jct(self, trace_id):
        jobs = synthesize_trace(trace_id, 24, EF_PROFILES,
                                with_deadlines=False)
        results = run_both(jobs)
        assert average_jct(results["vt"]) <= average_jct(results["ef"])

    def test_deadline_free_jobs_all_complete(self):
        jobs = synthesize_trace(4, 24, EF_PROFILES, with_deadlines=False)
        results = run_both(jobs)
        for result in results.values():
            assert all(outcome.completed for outcome in result.outcomes)


class TestMakespan:
    @pytest.mark.parametrize("num_jobs", [8, 24, 48])
    def test_vtrain_reduces_makespan(self, num_jobs):
        jobs = makespan_trace(num_jobs, EF_PROFILES)
        results = run_both(jobs)
        assert makespan(results["vt"]) <= makespan(results["ef"]) * 1.0001

    def test_makespan_grows_with_jobs(self):
        spans = []
        for num_jobs in (8, 24, 48):
            jobs = makespan_trace(num_jobs, EF_PROFILES)
            scheduler = ElasticFlowScheduler(EF_PROFILES, total_gpus=1024)
            spans.append(makespan(ClusterSimulator(scheduler).run(jobs)))
        assert spans == sorted(spans)

    def test_gpu_accounting_consistent(self):
        """GPU-seconds consumed never exceed capacity x makespan."""
        jobs = makespan_trace(24, EF_PROFILES)
        scheduler = ElasticFlowScheduler(EF_PROFILES, total_gpus=1024)
        result = ClusterSimulator(scheduler).run(jobs)
        busy = sum(outcome.gpu_seconds for outcome in result.outcomes)
        assert busy <= 1024 * makespan(result) * 1.0001


class TestSchedulerFairness:
    def test_identical_profiles_identical_outcomes(self):
        """With equal profiles, the two 'systems' behave identically."""
        jobs = synthesize_trace(9, 16, EF_PROFILES)
        first = ClusterSimulator(
            ElasticFlowScheduler(EF_PROFILES, 1024)).run(jobs)
        second = ClusterSimulator(
            ElasticFlowScheduler(EF_PROFILES, 1024)).run(jobs)
        assert [o.completion_time for o in first.outcomes] == \
            [o.completion_time for o in second.outcomes]

    def test_capacity_respected_at_every_allocation(self):
        """The scheduler never hands out more than the cluster has."""
        from repro.cluster.scheduler import SchedulableJob
        scheduler = ElasticFlowScheduler(EF_PROFILES, total_gpus=128)
        jobs = [SchedulableJob(job_id=i, model_name="Megatron 18.4B",
                               remaining_iterations=1000.0,
                               arrival_time=0.0, deadline=None)
                for i in range(10)]
        allocation = scheduler.allocate(jobs, now=0.0)
        assert sum(allocation.values()) <= 128
