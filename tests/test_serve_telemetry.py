"""Tests for request-scoped telemetry in the serving tier.

The load-bearing claims under test:

* the envelope ``trace_id`` is bound per request and **never**
  cross-contaminates between interleaved concurrent requests;
* coalesced dedup followers report the *leader's* trace ID, naming the
  computation that actually served them;
* a traced served predict stitches into a single Chrome trace — client
  and daemon as two processes, flow events across the RPC boundary,
  micro-batch queueing visible — that round-trips through
  ``schemas/chrome_trace.schema.json``;
* the ``metrics``/``healthz``/``timeseries``/``slo`` RPCs, the HTTP
  scrape listener, the JSON access log, and the ``repro stats
  --connect`` / ``repro top`` CLI surfaces all read the same
  instruments.
"""

from __future__ import annotations

import io
import json
import threading
import urllib.request
from pathlib import Path

import pytest

from repro import obs
from repro.cli import main
from repro.config.description import InputDescription
from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import single_node
from repro.graph.builder import clear_structure_cache
from repro.obs.schema import validate
from repro.obs.stitch import stitch_trace
from repro.serve import (MetricsHTTPServer, PredictionService, RemoteError,
                         ServeClient, ServeDaemon, protocol)

SCHEMA_DIR = Path(__file__).resolve().parent.parent / "schemas"


def load_schema(name: str) -> dict:
    return json.loads((SCHEMA_DIR / name).read_text())


@pytest.fixture(autouse=True)
def clean_slate():
    clear_structure_cache()
    obs.reset()
    yield
    clear_structure_cache()
    obs.reset()


@pytest.fixture
def service():
    svc = PredictionService(batch_window_s=0.001, sample_interval_s=0.0)
    yield svc
    svc.close()


@pytest.fixture
def daemon(service):
    server = ServeDaemon(service, port=0)
    server.start()
    yield server
    server.stop()


def tiny_description(*, tensor: int = 2, data: int = 2, pipeline: int = 2,
                     micro_batch_size: int = 2) -> InputDescription:
    model = ModelConfig(hidden_size=512, num_layers=4, seq_length=128,
                        num_heads=8, vocab_size=32_000, name="tiny")
    plan = ParallelismConfig(tensor=tensor, data=data, pipeline=pipeline,
                             micro_batch_size=micro_batch_size)
    return InputDescription(model=model, system=single_node(), plan=plan,
                            training=TrainingConfig(global_batch_size=16))


def no_notify(_message: dict) -> None:
    raise AssertionError("no notification expected")


def predict_params(description: InputDescription) -> dict:
    return {"description": description.to_dict(), "granularity": "stage"}


# ---------------------------------------------------------------------------
# Trace propagation
# ---------------------------------------------------------------------------
class TestTracePropagation:
    def test_envelope_trace_id_lands_in_response(self, service):
        request = protocol.request(1, "predict",
                                   predict_params(tiny_description()),
                                   trace_id="feedc0dedeadbeef")
        response, _ = service.dispatch(request, no_notify)
        assert response["result"]["served"]["trace_id"] == "feedc0dedeadbeef"

    def test_untraced_request_has_no_trace_id(self, service):
        request = protocol.request(1, "predict",
                                   predict_params(tiny_description()))
        response, _ = service.dispatch(request, no_notify)
        served = response["result"]["served"]
        assert "trace_id" not in served
        assert "spans" not in served

    def test_interleaved_trace_ids_never_cross_contaminate(self, service):
        """Concurrent requests with distinct trace IDs each get exactly
        their own ID back — in the response and on every span."""
        descriptions = [tiny_description(tensor=t, data=d, pipeline=p,
                                         micro_batch_size=m)
                        for t, d, p, m in
                        ((2, 2, 2, 2), (1, 4, 2, 1), (4, 2, 1, 2),
                         (2, 4, 1, 1), (1, 2, 4, 2), (8, 1, 1, 1))]
        results: dict[str, dict] = {}
        errors: list[BaseException] = []
        barrier = threading.Barrier(len(descriptions))

        def worker(slot: int) -> None:
            trace_id = f"trace{slot:012d}"
            params = predict_params(descriptions[slot]) | {"trace": True}
            request = protocol.request(slot, "predict", params,
                                       trace_id=trace_id)
            try:
                barrier.wait()
                response, _ = service.dispatch(request, no_notify)
                results[trace_id] = response["result"]["served"]
            except BaseException as exc:  # noqa: BLE001 - asserted below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(descriptions))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]
        assert len(results) == len(descriptions)
        for trace_id, served in results.items():
            assert served["trace_id"] == trace_id
            assert served["leader_trace_id"] == trace_id  # own leader
            for span in served["spans"]:
                assert span["tags"]["trace_id"] == trace_id

    def test_coalesced_followers_report_the_leaders_trace_id(self):
        """A dedup burst: every coalesced follower's response names the
        leader's trace ID as the computation that served it."""
        service = PredictionService(batch_window_s=0.05,
                                    sample_interval_s=0.0)
        try:
            description = tiny_description()
            burst = 6
            responses: list[dict] = [None] * burst
            errors: list[BaseException] = []
            barrier = threading.Barrier(burst)

            def worker(slot: int) -> None:
                params = predict_params(description) | {"trace": True}
                request = protocol.request(slot, "predict", params,
                                           trace_id=f"burst{slot:07d}")
                try:
                    barrier.wait()
                    response, _ = service.dispatch(request, no_notify)
                    responses[slot] = response["result"]["served"]
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(burst)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, errors[0]
        finally:
            service.close()

        by_source: dict[str, list[dict]] = {}
        for served in responses:
            by_source.setdefault(served["source"], []).append(served)
        assert len(by_source.get("computed", [])) == 1
        leader = by_source["computed"][0]
        assert leader["leader_trace_id"] == leader["trace_id"]
        assert by_source.get("coalesced"), by_source.keys()
        for served in by_source["coalesced"]:
            assert served["leader_trace_id"] == leader["trace_id"]
            assert served["trace_id"] != leader["trace_id"]
            # The follower's execute span names the leader too.
            execute = [s for s in served["spans"]
                       if s["name"] == "serve.batch.execute"]
            assert execute[0]["tags"]["leader_trace_id"] == \
                leader["trace_id"]

    def test_daemon_mints_trace_id_when_trace_requested_without_one(
            self, service):
        params = predict_params(tiny_description()) | {"trace": True}
        result = service.predict(params)
        served = result["served"]
        assert len(served["trace_id"]) == 16
        assert served["spans"]


# ---------------------------------------------------------------------------
# Stitched traces over the wire
# ---------------------------------------------------------------------------
class TestStitchedTrace:
    def test_served_predict_stitches_and_round_trips_schema(self, daemon):
        host, port = daemon.address
        trace_id = obs.new_trace_id()
        with ServeClient.connect(host, port) as client:
            payload = client.predict(
                description=tiny_description().to_dict(),
                granularity="stage", trace=True, trace_id=trace_id)
            client_spans = client.last_call_spans
        served = payload["served"]
        assert served["trace_id"] == trace_id
        assert client_spans and client_spans[0]["name"] == "client.call"

        stitched = stitch_trace(trace_id=trace_id,
                                client_spans=client_spans,
                                server_spans=served["spans"],
                                client_pid=1234,
                                server_pid=served["pid"])
        # Round trip through JSON exactly as the CLI writes it.
        stitched = json.loads(json.dumps(stitched))
        validate(stitched, load_schema("chrome_trace.schema.json"))

        events = stitched["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert pids == {1234, served["pid"]}
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"client.call", "serve.predict",
                "serve.batch.queued"} <= names
        flows = [e for e in events if e["ph"] in ("s", "f")]
        assert {e["id"] for e in flows} == {f"{trace_id}:req",
                                            f"{trace_id}:res"}
        # The client span encloses the daemon's handling in wall time.
        spans = {e["name"]: e for e in events if e["ph"] == "X"}
        assert (spans["client.call"]["args"]["start_unix"]
                <= spans["serve.predict"]["args"]["start_unix"])

    def test_queueing_interval_is_visible(self, daemon):
        host, port = daemon.address
        with ServeClient.connect(host, port) as client:
            payload = client.predict(
                description=tiny_description(tensor=4, data=1).to_dict(),
                granularity="stage", trace=True,
                trace_id=obs.new_trace_id())
        spans = {s["name"]: s for s in payload["served"]["spans"]}
        queued = spans["serve.batch.queued"]
        execute = spans["serve.batch.execute"]
        assert queued["duration_s"] >= 0.0
        assert execute["tags"]["batch_size"] >= 1
        # Queueing ends where execution starts.
        assert (queued["start_unix"] + queued["duration_s"]
                == pytest.approx(execute["start_unix"], abs=1e-6))


# ---------------------------------------------------------------------------
# Telemetry RPCs
# ---------------------------------------------------------------------------
class TestTelemetryRPCs:
    def test_metrics_snapshot_format(self, daemon):
        with ServeClient.connect(*daemon.address) as client:
            client.ping()
            payload = client.metrics()
        assert payload["format"] == "snapshot"
        assert payload["snapshot"]["counters"]["serve.requests"] >= 1

    def test_metrics_prometheus_format(self, daemon):
        with ServeClient.connect(*daemon.address) as client:
            client.ping()
            payload = client.metrics(format="prometheus")
        assert payload["content_type"].startswith("text/plain")
        assert "# TYPE repro_serve_requests counter" in payload["text"]
        # The scrape itself refreshes the SLO gauges: a Prometheus-only
        # consumer must never see stale zeros.
        assert "repro_serve_slo_latency_ok 1.0" in payload["text"]
        assert "repro_serve_slo_error_budget_remaining 1.0" in payload["text"]

    def test_metrics_unknown_format_rejected(self, daemon):
        with ServeClient.connect(*daemon.address) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.metrics(format="xml")
        assert excinfo.value.code == protocol.INVALID_PARAMS

    def test_healthz(self, daemon):
        with ServeClient.connect(*daemon.address) as client:
            health = client.healthz()
        assert health["ok"] is True
        assert health["uptime_s"] >= 0.0

    def test_timeseries_on_demand_sample(self, daemon):
        with ServeClient.connect(*daemon.address) as client:
            client.predict(description=tiny_description().to_dict(),
                           granularity="stage")
            ring = client.timeseries(sample=True)
        assert ring["kind"] == "obs_timeseries"
        validate(ring, load_schema("obs_timeseries.schema.json"))
        assert ring["samples"][-1]["requests"] >= 1

    def test_slo_rpc_shape(self, daemon):
        with ServeClient.connect(*daemon.address) as client:
            client.timeseries(sample=True)
            verdict = client.slo()
        assert verdict["latency"]["objective_s"] > 0
        assert 0.0 <= verdict["error_budget"]["remaining"] <= 1.0

    def test_stats_carries_slo(self, daemon):
        with ServeClient.connect(*daemon.address) as client:
            stats = client.stats()
        assert "slo" in stats
        assert "error_budget" in stats["slo"]


# ---------------------------------------------------------------------------
# HTTP scrape listener
# ---------------------------------------------------------------------------
class TestHTTPListener:
    @pytest.fixture
    def scraper(self, service):
        server = MetricsHTTPServer(service, port=0)
        server.start()
        yield server
        server.stop()

    def _get(self, scraper, path):
        host, port = scraper.address
        with urllib.request.urlopen(f"http://{host}:{port}{path}",
                                    timeout=10.0) as response:
            return (response.status,
                    response.headers.get("Content-Type", ""),
                    response.read().decode("utf-8"))

    def test_metrics_scrape(self, service, scraper):
        service.predict(predict_params(tiny_description()))
        status, content_type, body = self._get(scraper, "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "repro_serve_requests_predict 1" in body
        assert "repro_serve_slo_burn_rate" in body

    def test_healthz_scrape(self, scraper):
        status, content_type, body = self._get(scraper, "/healthz")
        assert status == 200
        assert content_type == "application/json"
        assert json.loads(body)["ok"] is True

    def test_timeseries_and_slo_scrapes(self, scraper):
        status, _, body = self._get(scraper, "/timeseries")
        assert status == 200
        validate(json.loads(body),
                 load_schema("obs_timeseries.schema.json"))
        status, _, body = self._get(scraper, "/slo")
        assert status == 200
        assert "error_budget" in json.loads(body)

    def test_unknown_path_is_404(self, scraper):
        host, port = scraper.address
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"http://{host}:{port}/nope",
                                   timeout=10.0)
        assert excinfo.value.code == 404


# ---------------------------------------------------------------------------
# Access log
# ---------------------------------------------------------------------------
class TestAccessLog:
    def test_one_json_line_per_request(self):
        sink = io.StringIO()
        service = PredictionService(batch_window_s=0.001,
                                    sample_interval_s=0.0,
                                    access_log=sink)
        try:
            service.dispatch(protocol.request(1, "ping"), no_notify,
                             peer="10.0.0.9:1234")
            service.dispatch(
                protocol.request(2, "predict",
                                 predict_params(tiny_description()),
                                 trace_id="aaaabbbbccccdddd"),
                no_notify)
            service.dispatch(protocol.request(3, "nosuch"), no_notify)
        finally:
            service.close()
        lines = [json.loads(line)
                 for line in sink.getvalue().splitlines()]
        assert len(lines) == 3
        ping, predict, bad = lines
        assert ping["method"] == "ping" and ping["status"] == "ok"
        assert ping["peer"] == "10.0.0.9:1234"
        assert ping["code"] == 0
        assert predict["trace_id"] == "aaaabbbbccccdddd"
        assert predict["elapsed_s"] > 0
        assert bad["status"] == "error"
        assert bad["code"] == protocol.METHOD_NOT_FOUND

    def test_torn_log_sink_never_fails_the_request(self):
        sink = io.StringIO()
        service = PredictionService(batch_window_s=0.001,
                                    sample_interval_s=0.0,
                                    access_log=sink)
        try:
            sink.close()  # writes now raise ValueError
            response, _ = service.dispatch(protocol.request(1, "ping"),
                                           no_notify)
            assert response["result"]["ok"] is True
        finally:
            service.close()


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------
class TestCLI:
    @pytest.fixture
    def restore_obs(self):
        was_enabled = obs.enabled()
        yield
        (obs.enable if was_enabled else obs.disable)()
        obs.reset()

    def test_stats_connect_reads_live_registry(self, daemon, capsys):
        host, port = daemon.address
        with ServeClient.connect(host, port) as client:
            client.ping()
        assert main(["stats", "--connect", f"{host}:{port}"]) == 0
        out = capsys.readouterr().out
        assert f"live daemon      : {host}:{port}" in out
        assert "serve.requests" in out

    def test_top_renders_frames(self, daemon, capsys):
        host, port = daemon.address
        with ServeClient.connect(host, port) as client:
            client.predict(description=tiny_description().to_dict(),
                           granularity="stage")
        assert main(["top", "--connect", f"{host}:{port}",
                     "--interval", "0.01", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("repro top —") == 2
        assert "req/s" in out
        assert "SLO:" in out

    def test_predict_connect_trace_writes_stitched_file(
            self, daemon, tmp_path, capsys, restore_obs):
        host, port = daemon.address
        description = tiny_description()
        description_path = tmp_path / "desc.json"
        description.save(description_path)
        trace_path = tmp_path / "stitched.json"
        assert main(["predict", str(description_path),
                     "--granularity", "stage",
                     "--connect", f"{host}:{port}",
                     "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "stitched events" in out
        payload = json.loads(trace_path.read_text())
        validate(payload, load_schema("chrome_trace.schema.json"))
        names = {e["name"] for e in payload["traceEvents"]
                 if e["ph"] == "X"}
        assert {"client.call", "serve.predict"} <= names
        # The daemon fixture shares this process, so pids coincide here;
        # the cross-process flow events are still stitched in.
        flows = [e for e in payload["traceEvents"] if e["ph"] in ("s", "f")]
        assert len(flows) == 4

    def test_predict_connect_timing_still_rejected(self, daemon, capsys):
        host, port = daemon.address
        assert main(["predict", "--preset", "mtnlg", "--timing",
                     "--connect", f"{host}:{port}"]) == 1
        assert "--timing" in capsys.readouterr().err
