"""Unit tests for the operator taxonomy."""

import pytest

from repro.config.parallelism import RecomputeMode
from repro.errors import ConfigError
from repro.graph.operators import (CommKind, CommOperator, CommScope,
                                   CompOperator, OpKind, data_allreduce,
                                   pipeline_send_recv, tensor_allreduce)
from repro.hardware.interconnect import LinkType


class TestCompOperator:
    def _mha(self, **overrides):
        base = dict(kind=OpKind.FWD_MHA, micro_batch=2, seq_length=128,
                    hidden_size=512, num_heads=8, tensor_parallel=2)
        base.update(overrides)
        return CompOperator(**base)

    def test_signature_equality_for_identical_shapes(self):
        assert self._mha().signature == self._mha().signature

    def test_signature_differs_by_tensor_degree(self):
        assert self._mha().signature != self._mha(tensor_parallel=4).signature

    def test_signature_differs_by_recompute(self):
        bwd = dict(kind=OpKind.BWD_MHA, micro_batch=1, seq_length=8,
                   hidden_size=64, num_heads=2, tensor_parallel=1)
        a = CompOperator(recompute=RecomputeMode.NONE, **bwd)
        b = CompOperator(recompute=RecomputeMode.FULL, **bwd)
        assert a.signature != b.signature

    def test_tokens(self):
        assert self._mha().tokens == 256

    def test_direction_flags(self):
        assert self._mha().is_forward
        assert not self._mha().is_backward
        bwd = self._mha(kind=OpKind.BWD_MHA)
        assert bwd.is_backward and not bwd.is_forward

    def test_weight_update_requires_params(self):
        with pytest.raises(ConfigError):
            CompOperator(kind=OpKind.WEIGHT_UPDATE)
        op = CompOperator(kind=OpKind.WEIGHT_UPDATE, num_params=100)
        assert op.num_params == 100

    def test_embedding_requires_vocab(self):
        with pytest.raises(ConfigError):
            CompOperator(kind=OpKind.FWD_EMBEDDING, micro_batch=1,
                         seq_length=8, hidden_size=64, num_heads=2,
                         tensor_parallel=1)

    def test_heads_must_divide_across_tensor_ranks(self):
        with pytest.raises(ConfigError):
            self._mha(num_heads=8, tensor_parallel=3)


class TestCommOperator:
    def test_tensor_allreduce_payload_is_bsh(self):
        comm = tensor_allreduce(2, 128, 512, 4, LinkType.INTRA_NODE)
        assert comm.size_bytes == pytest.approx(2 * 2 * 128 * 512)
        assert comm.group_size == 4
        assert comm.scope is CommScope.TENSOR

    def test_data_allreduce(self):
        comm = data_allreduce(1 << 20, 8, LinkType.INTER_NODE)
        assert comm.kind is CommKind.ALL_REDUCE
        assert comm.scope is CommScope.DATA

    def test_send_recv_group_is_two(self):
        comm = pipeline_send_recv(1, 128, 512, LinkType.INTER_NODE)
        assert comm.group_size == 2
        with pytest.raises(ConfigError):
            CommOperator(kind=CommKind.SEND_RECV, scope=CommScope.PIPELINE,
                         size_bytes=8, group_size=3,
                         link=LinkType.INTER_NODE)

    def test_rejects_negative_size(self):
        with pytest.raises(ConfigError):
            CommOperator(kind=CommKind.ALL_REDUCE, scope=CommScope.DATA,
                         size_bytes=-1, group_size=2,
                         link=LinkType.INTRA_NODE)

    def test_signature_is_hashable_and_distinct(self):
        a = tensor_allreduce(1, 128, 512, 4, LinkType.INTRA_NODE)
        b = tensor_allreduce(1, 128, 512, 8, LinkType.INTRA_NODE)
        assert hash(a.signature) != hash(b.signature) or \
            a.signature != b.signature
