"""Property-based invariants of the collective cost model (ISSUE 2).

Three contracts hold for every algorithm on every topology:

* time is monotone (non-decreasing) in payload size;
* on an *uncontended* topology, no algorithm beats the flat-ring lower
  bound ``S/B * 2(n-1)/n`` at the node's aggregate egress bandwidth
  (the Equation-1 transfer term with zero latency);
* a group confined to one node reduces exactly to the profiled NVLink
  ring table (the paper's intra-node regime).
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.config.system import multi_node
from repro.hardware.interconnect import LinkType, nvlink_ring
from repro.network.collectives import (flat_ring_lower_bound,
                                       hierarchical_allreduce_time,
                                       ring_allreduce_time,
                                       tree_allreduce_time)
from repro.network.model import TopologyAwareNcclModel, place_group
from repro.network.topology import build_topology, gpu_id
from repro.profiling.nccl import NcclModel

MIB = float(1 << 20)

sizes = st.floats(min_value=1024.0, max_value=1024 * MIB)
group_sizes = st.sampled_from([2, 4, 8, 16])
networks = st.sampled_from(["rail", "fat-tree", "fat-tree:4"])


def model_for(network: str, num_nodes: int = 16) -> TopologyAwareNcclModel:
    return TopologyAwareNcclModel(multi_node(num_nodes, network=network))


def algorithm_times(network: str, size: float, span: int):
    """(ring, tree, hierarchical) times for a representative group."""
    system = multi_node(16, network=network)
    topology = build_topology(system)
    members = [gpu_id(node, 0) for node in range(span)]
    channels = system.nics_per_node
    ring = ring_allreduce_time(topology, members, size, channels=channels)
    tree = tree_allreduce_time(topology, members, size, channels=channels)
    slots = [[gpu_id(node, slot) for slot in range(4)]
             for node in range(span)]
    hierarchical = hierarchical_allreduce_time(
        topology, slots, size, intra_ring=nvlink_ring(system, 4))
    return ring, tree, hierarchical


class TestMonotoneInPayload:
    @given(network=networks, span=group_sizes,
           small=sizes, factor=st.floats(min_value=1.0, max_value=64.0))
    def test_all_algorithms(self, network, span, small, factor):
        lo = algorithm_times(network, small, span)
        hi = algorithm_times(network, small * factor, span)
        for slow, fast in zip(hi, lo):
            assert slow >= fast

    @given(network=networks, group=st.sampled_from([2, 8, 32, 64]),
           small=sizes, factor=st.floats(min_value=1.0, max_value=64.0))
    def test_model_end_to_end(self, network, group, small, factor):
        model = model_for(network)
        lo = model.allreduce_time(small, group, LinkType.INTER_NODE)
        hi = model.allreduce_time(small * factor, group,
                                  LinkType.INTER_NODE)
        assert hi >= lo


class TestFlatRingLowerBound:
    @given(network=networks, span=group_sizes, size=sizes)
    def test_no_algorithm_beats_the_bound(self, network, span, size):
        """On an uncontended topology every algorithm's time is >= the
        latency-free Equation-1 transfer at aggregate bandwidth."""
        system = multi_node(16, network=network)
        bound = flat_ring_lower_bound(system.effective_internode_bandwidth,
                                      size, span)
        for time in algorithm_times(network, size, span):
            assert time >= bound

    @given(network=networks, group=st.sampled_from([2, 8, 32, 64]),
           size=sizes)
    def test_model_respects_the_bound(self, network, group, size):
        model = model_for(network)
        placement = place_group(group, model.system.num_nodes)
        bound = flat_ring_lower_bound(
            model.system.effective_internode_bandwidth, size,
            placement.nodes_spanned)
        assert model.allreduce_time(size, group,
                                    LinkType.INTER_NODE) >= bound


class TestSingleNodeReducesToNvlinkTable:
    @given(network=networks, group=st.sampled_from([2, 4, 8]), size=sizes)
    def test_intra_group_uses_the_profiled_table(self, network, group, size):
        """Hierarchical All-Reduce degenerates on one node: the
        topology-aware model answers straight from the NVLink ring
        table, bit-identical to the flat model."""
        topo_model = model_for(network)
        flat_model = NcclModel(multi_node(16))
        assert topo_model.allreduce_time(size, group, LinkType.INTRA_NODE) \
            == flat_model.allreduce_time(size, group, LinkType.INTRA_NODE)
