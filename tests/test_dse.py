"""Unit tests for design-space enumeration and exploration."""

import pytest

from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.space import (SearchSpace, count_plans, divisors,
                             enumerate_plans, pipeline_candidates,
                             powers_of_two, tensor_candidates)
from repro.errors import ConfigError, InfeasibleConfigError


@pytest.fixture
def model():
    return ModelConfig(hidden_size=1024, num_layers=12, seq_length=512,
                       num_heads=16, name="dse-model")


@pytest.fixture
def training():
    return TrainingConfig(global_batch_size=32)


class TestSpaceHelpers:
    def test_powers_of_two(self):
        assert powers_of_two(16) == [1, 2, 4, 8, 16]
        assert powers_of_two(1) == [1]
        with pytest.raises(ConfigError):
            powers_of_two(0)

    def test_divisors(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(105) == [1, 3, 5, 7, 15, 21, 35, 105]
        with pytest.raises(ConfigError):
            divisors(0)

    def test_tensor_candidates_divide_heads(self, model):
        assert tensor_candidates(model, SearchSpace()) == [1, 2, 4, 8, 16]
        narrow = ModelConfig(hidden_size=768, num_layers=12, seq_length=512,
                             num_heads=12)
        assert tensor_candidates(narrow, SearchSpace()) == [1, 2, 4]

    def test_search_space_rejects_bad_bounds(self):
        with pytest.raises(ConfigError):
            SearchSpace(max_tensor=0)
        with pytest.raises(ConfigError):
            SearchSpace(micro_batch_sizes=())
        with pytest.raises(ConfigError):
            SearchSpace(micro_batch_sizes=(1, 0))

    def test_pipeline_candidates_divide_layers(self, model):
        assert pipeline_candidates(model, SearchSpace(max_pipeline=6)) == [
            1, 2, 3, 4, 6]


class TestEnumeration:
    def test_exact_gpu_count(self, model, training):
        plans = list(enumerate_plans(model, training, num_gpus=16))
        assert plans
        assert all(p.total_gpus == 16 for p in plans)

    def test_max_gpu_budget(self, model, training):
        plans = list(enumerate_plans(model, training, max_gpus=8))
        assert all(p.total_gpus <= 8 for p in plans)

    def test_structural_constraints_hold(self, model, training):
        for plan in enumerate_plans(model, training, max_gpus=16):
            assert model.num_heads % plan.tensor == 0
            assert model.num_layers % plan.pipeline == 0
            assert training.global_batch_size % plan.data == 0
            per_replica = training.global_batch_size // plan.data
            assert per_replica % plan.micro_batch_size == 0

    def test_requires_exactly_one_budget(self, model, training):
        with pytest.raises(ConfigError):
            list(enumerate_plans(model, training))
        with pytest.raises(ConfigError):
            list(enumerate_plans(model, training, num_gpus=8, max_gpus=8))

    def test_count_matches_enumeration(self, model, training):
        count = count_plans(model, training, max_gpus=16)
        assert count == len(list(enumerate_plans(model, training,
                                                 max_gpus=16)))

    def test_paper_scale_space_is_thousands(self):
        """Section V-A: 'several thousands of different 3D parallelism'
        configurations for the MT-NLG sweep."""
        from repro.config.presets import MT_NLG_530B, MT_NLG_TRAINING
        count = count_plans(MT_NLG_530B, MT_NLG_TRAINING,
                            max_gpus=16 * 32 * 105)
        assert count > 2000


class TestExplorer:
    def test_explore_marks_feasibility(self, model, training):
        explorer = DesignSpaceExplorer(model, training)
        result = explorer.explore(max_gpus=8, space=SearchSpace(
            max_tensor=8, max_data=8, max_pipeline=4,
            micro_batch_sizes=(1, 2)))
        assert result.points
        assert result.num_feasible > 0
        for point in result.feasible_points:
            assert point.iteration_time > 0
            assert 0 < point.utilization < 1

    def test_best_by_iteration_time(self, model, training):
        explorer = DesignSpaceExplorer(model, training)
        result = explorer.explore(max_gpus=8)
        best = result.best_by_iteration_time()
        assert all(best.iteration_time <= p.iteration_time
                   for p in result.feasible_points)

    def test_best_with_gpu_constraint(self, model, training):
        explorer = DesignSpaceExplorer(model, training)
        result = explorer.explore(max_gpus=16)
        best = result.best_by_iteration_time(num_gpus=8)
        assert best.num_gpus == 8

    def test_best_by_cost_not_worse_than_fastest(self, model, training):
        explorer = DesignSpaceExplorer(model, training)
        result = explorer.explore(max_gpus=16)
        cheapest = result.best_by_cost()
        fastest = result.best_by_iteration_time()
        assert cheapest.cost_per_iteration() <= \
            fastest.cost_per_iteration() + 1e-12

    def test_pareto_frontier_is_monotone(self, model, training):
        explorer = DesignSpaceExplorer(model, training)
        result = explorer.explore(max_gpus=16)
        frontier = result.pareto_frontier()
        times = [p.iteration_time for p in frontier]
        costs = [p.cost_per_iteration() for p in frontier]
        assert times == sorted(times)
        assert costs == sorted(costs, reverse=True)

    def test_selection_prices_each_point_once(self, model, training):
        """best_by_cost / pareto_frontier evaluate the pricing model
        O(n) times, not once per sort comparison."""
        from repro.cost.pricing import PricingModel

        class CountingPricing(PricingModel):
            calls = 0

            def cost(self, num_gpus, seconds):
                type(self).calls += 1
                return super().cost(num_gpus, seconds)

        explorer = DesignSpaceExplorer(model, training)
        result = explorer.explore(max_gpus=16)
        n = result.num_feasible
        assert n > 2

        pricing = CountingPricing()
        CountingPricing.calls = 0
        result.best_by_cost(pricing=pricing)
        assert CountingPricing.calls == n

        CountingPricing.calls = 0
        result.pareto_frontier(pricing=pricing)
        assert CountingPricing.calls == n

    def test_network_threads_into_derived_systems(self, model, training):
        space = SearchSpace(max_tensor=4, max_data=4, max_pipeline=2,
                            micro_batch_sizes=(1,))
        flat = DesignSpaceExplorer(model, training).explore(
            num_gpus=16, space=space)
        rail = DesignSpaceExplorer(model, training, network="rail").explore(
            num_gpus=16, space=space)
        assert [p.plan for p in rail.points] == [p.plan for p in flat.points]
        assert rail.num_feasible == flat.num_feasible
        assert any(r.iteration_time != f.iteration_time
                   for r, f in zip(rail.feasible_points,
                                   flat.feasible_points))

    def test_network_parallel_engine_matches_serial(self, model, training):
        from repro.dse.parallel import ParallelExplorer
        space = SearchSpace(max_tensor=4, max_data=4, max_pipeline=2,
                            micro_batch_sizes=(1,))
        serial = DesignSpaceExplorer(
            model, training, network="fat-tree:4").explore(
            num_gpus=16, space=space)
        parallel = ParallelExplorer(
            model, training, workers=2, network="fat-tree:4").explore(
            num_gpus=16, space=space)
        assert parallel.points == serial.points

    def test_heatmap_keys_are_ways(self, model, training):
        explorer = DesignSpaceExplorer(model, training)
        result = explorer.explore(max_gpus=8)
        grid = result.heatmap("utilization")
        assert grid
        for way in grid:
            assert len(way) == 3

    def test_heatmap_rejects_unknown_metric(self, model, training):
        explorer = DesignSpaceExplorer(model, training)
        result = explorer.explore(max_gpus=8)
        with pytest.raises(ConfigError):
            result.heatmap("power")

    def test_no_match_raises(self, model, training):
        explorer = DesignSpaceExplorer(model, training)
        result = explorer.explore(max_gpus=8)
        with pytest.raises(InfeasibleConfigError):
            result.best_by_iteration_time(num_gpus=7)

    def test_infeasible_plan_becomes_row(self, training):
        """Memory-busting plans appear with feasible=False, not raises."""
        big = ModelConfig(hidden_size=8192, num_layers=12, seq_length=2048,
                          num_heads=64, name="big")
        explorer = DesignSpaceExplorer(big, TrainingConfig(global_batch_size=32))
        point = explorer.evaluate(ParallelismConfig(tensor=1, data=1,
                                                    pipeline=1))
        assert not point.feasible
        assert "GiB" in point.infeasible_reason

    def test_structurally_invalid_plan_becomes_row(self, model, training):
        """Regression: a ConfigError from a structurally invalid plan
        (micro-batch larger than the per-replica batch) used to abort the
        whole sweep instead of becoming an infeasible row."""
        explorer = DesignSpaceExplorer(model, training)
        bad = ParallelismConfig(tensor=1, data=1, pipeline=1,
                                micro_batch_size=64)
        point = explorer.evaluate(bad)
        assert not point.feasible
        assert point.infeasible_reason

    def test_invalid_plan_does_not_abort_explore(self, model, training):
        explorer = DesignSpaceExplorer(model, training)
        bad = ParallelismConfig(tensor=1, data=1, pipeline=1,
                                micro_batch_size=64)
        good = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        result = explorer.explore(plans=[bad, good])
        assert [p.feasible for p in result.points] == [False, True]

    def test_micro_batch_collapse(self, model, training):
        explorer = DesignSpaceExplorer(model, training)
        result = explorer.explore(max_gpus=8)
        collapsed = result.best_micro_batch_per_way()
        ways = [p.plan.way for p in result.feasible_points]
        assert set(collapsed) == set(ways)
