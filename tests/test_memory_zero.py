"""Tests for the ZeRO-stage memory extension."""

import pytest

from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.errors import InfeasibleConfigError
from repro.memory.footprint import memory_footprint, stage_zero_params


@pytest.fixture
def plan():
    return ParallelismConfig(tensor=1, data=8, pipeline=1)


@pytest.fixture
def batch():
    return TrainingConfig(global_batch_size=16)


class TestZeroStages:
    def test_stage0_nothing_sharded(self, tiny_model, plan, batch):
        fp = memory_footprint(tiny_model, plan, batch, zero_stage=0)
        params = stage_zero_params(tiny_model, plan)
        assert fp.weights == pytest.approx(2.0 * params)
        assert fp.gradients == pytest.approx(2.0 * params)
        assert fp.optimizer_states == pytest.approx(12.0 * params)

    def test_stage1_shards_optimizer_only(self, tiny_model, plan, batch):
        fp = memory_footprint(tiny_model, plan, batch, zero_stage=1)
        params = stage_zero_params(tiny_model, plan)
        assert fp.optimizer_states == pytest.approx(12.0 * params / 8)
        assert fp.gradients == pytest.approx(2.0 * params)

    def test_stage2_also_shards_gradients(self, tiny_model, plan, batch):
        fp = memory_footprint(tiny_model, plan, batch, zero_stage=2)
        params = stage_zero_params(tiny_model, plan)
        assert fp.gradients == pytest.approx(2.0 * params / 8)
        assert fp.weights == pytest.approx(2.0 * params)

    def test_stage3_also_shards_weights(self, tiny_model, plan, batch):
        fp = memory_footprint(tiny_model, plan, batch, zero_stage=3)
        params = stage_zero_params(tiny_model, plan)
        assert fp.weights == pytest.approx(2.0 * params / 8)

    def test_stages_are_monotone(self, tiny_model, plan, batch):
        totals = [memory_footprint(tiny_model, plan, batch,
                                   zero_stage=stage).total
                  for stage in (0, 1, 2, 3)]
        assert totals == sorted(totals, reverse=True)

    def test_activations_unaffected(self, tiny_model, plan, batch):
        fp0 = memory_footprint(tiny_model, plan, batch, zero_stage=0)
        fp3 = memory_footprint(tiny_model, plan, batch, zero_stage=3)
        assert fp0.activations == fp3.activations

    def test_legacy_bool_maps_to_stage1(self, tiny_model, plan, batch):
        legacy = memory_footprint(tiny_model, plan, batch,
                                  zero1_sharding=True)
        explicit = memory_footprint(tiny_model, plan, batch, zero_stage=1)
        assert legacy.total == explicit.total
        legacy_off = memory_footprint(tiny_model, plan, batch,
                                      zero1_sharding=False)
        explicit0 = memory_footprint(tiny_model, plan, batch, zero_stage=0)
        assert legacy_off.total == explicit0.total

    def test_sharding_pointless_without_data_parallel(self, tiny_model,
                                                      batch):
        solo = ParallelismConfig(tensor=1, data=1, pipeline=1)
        training = TrainingConfig(global_batch_size=16)
        fp0 = memory_footprint(tiny_model, solo, training, zero_stage=0)
        fp3 = memory_footprint(tiny_model, solo, training, zero_stage=3)
        assert fp0.total == fp3.total

    def test_unknown_stage_rejected(self, tiny_model, plan, batch):
        with pytest.raises(InfeasibleConfigError):
            memory_footprint(tiny_model, plan, batch, zero_stage=4)

    def test_zero3_enables_otherwise_infeasible_model(self, batch):
        """A model that overflows at stage 1 can fit at stage 3 — the
        ZeRO paper's motivating scenario."""
        from repro.config.model import ModelConfig
        from repro.config.system import single_node
        big = ModelConfig(hidden_size=12288, num_layers=16, seq_length=2048,
                          num_heads=96, name="zero-demo-29B")
        plan = ParallelismConfig(tensor=1, data=8, pipeline=1)
        training = TrainingConfig(global_batch_size=8)
        budget = single_node().gpu.memory_bytes * 0.96
        stage1 = memory_footprint(big, plan, training, zero_stage=1)
        stage3 = memory_footprint(big, plan, training, zero_stage=3)
        assert stage1.total > budget
        assert stage3.total < budget


ZERO_DEMO_KWARGS = dict(hidden_size=12288, num_layers=16, seq_length=2048,
                        num_heads=96, name="zero-demo-29B")


class TestZeroStageThreading:
    """ZeRO stages 2/3 must be reachable through the feasibility filter,
    VTrain, and the DSE — not just ``memory_footprint`` itself."""

    @pytest.fixture
    def big_model(self):
        from repro.config.model import ModelConfig
        return ModelConfig(**ZERO_DEMO_KWARGS)

    @pytest.fixture
    def plan8(self):
        return ParallelismConfig(tensor=1, data=8, pipeline=1)

    @pytest.fixture
    def batch8(self):
        return TrainingConfig(global_batch_size=8)

    def test_fits_in_memory_accepts_zero_stage(self, big_model, plan8,
                                               batch8):
        from repro.config.system import single_node
        from repro.memory.footprint import check_memory, fits_in_memory
        system = single_node()
        assert not fits_in_memory(big_model, plan8, batch8, system)
        assert fits_in_memory(big_model, plan8, batch8, system,
                              zero_stage=3)
        footprint = check_memory(big_model, plan8, batch8, system,
                                 zero_stage=3)
        unsharded = memory_footprint(big_model, plan8, batch8, zero_stage=0)
        assert footprint.weights == pytest.approx(unsharded.weights / 8)

    def test_vtrain_threads_zero_stage(self, big_model, plan8, batch8):
        from repro.config.system import single_node
        from repro.errors import InfeasibleConfigError
        from repro.sim.estimator import VTrain
        default = VTrain(single_node())
        assert default.zero_stage == 1
        with pytest.raises(InfeasibleConfigError):
            default.predict(big_model, plan8, batch8)
        sharded = VTrain(single_node(), zero_stage=3)
        prediction = sharded.predict(big_model, plan8, batch8)
        assert prediction.iteration_time > 0

    def test_vtrain_legacy_alias_still_works(self):
        from repro.config.system import single_node
        from repro.sim.estimator import VTrain
        assert VTrain(single_node(), zero1_sharding=False).zero_stage == 0
        assert VTrain(single_node(), zero1_sharding=True).zero_stage == 1
        assert VTrain(single_node(), zero1_sharding=False,
                      zero_stage=2).zero_stage == 2

    def test_explorer_threads_zero_stage(self, big_model, batch8):
        from repro.dse.explorer import DesignSpaceExplorer
        from repro.dse.space import SearchSpace
        space = SearchSpace(max_tensor=1, max_data=8, max_pipeline=1,
                            micro_batch_sizes=(1,))
        plain = DesignSpaceExplorer(big_model, batch8).explore(
            space=space, num_gpus=8)
        sharded = DesignSpaceExplorer(big_model, batch8, zero_stage=3
                                      ).explore(space=space, num_gpus=8)
        assert sharded.num_feasible > plain.num_feasible

    def test_parallel_explorer_cache_key_covers_zero_stage(self, big_model,
                                                           batch8):
        """Different ZeRO stages must not share cached predictions; the
        default stage keeps the pre-existing fingerprint."""
        from repro.dse.cache import fingerprint
        from repro.dse.parallel import ParallelExplorer
        plan = ParallelismConfig(tensor=1, data=8, pipeline=1)
        default = ParallelExplorer(big_model, batch8, workers=1)
        stage3 = ParallelExplorer(big_model, batch8, workers=1,
                                  zero_stage=3)
        assert default.fingerprint_for(plan) != stage3.fingerprint_for(plan)
        system = default._serial.system_for(plan.total_gpus)
        from repro.graph.builder import Granularity
        assert default.fingerprint_for(plan) == fingerprint(
            big_model, plan, batch8, system, Granularity.STAGE)
