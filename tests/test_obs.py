"""Unit tests for the observability core: metrics registry and tracer."""

import threading

import pytest

from repro import obs
from repro.obs.metrics import (HISTOGRAM_RESERVOIR, Counter, Gauge, Histogram,
                               MetricsRegistry, hit_rates)
from repro.obs.tracer import ENGINE_PID, NULL_SPAN, SpanTracer


@pytest.fixture
def clean_obs():
    """Run a test against the global obs state, restored afterwards."""
    was_enabled = obs.enabled()
    obs.reset()
    yield obs
    if was_enabled:
        obs.enable()
    else:
        obs.disable()
    obs.reset()


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_rejects_negative_amounts(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.increment(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.increment(7)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_last_value_wins(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        gauge.set(1.25)
        assert gauge.value == 1.25

    def test_reset(self):
        gauge = Gauge("g")
        gauge.set(9)
        gauge.reset()
        assert gauge.value == 0.0


class TestHistogram:
    def test_exact_totals(self):
        hist = Histogram("h")
        for value in (3.0, 1.0, 2.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(6.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)

    def test_nearest_rank_quantiles(self):
        hist = Histogram("h")
        for value in range(1, 101):  # 1..100
            hist.observe(float(value))
        assert hist.quantile(0.50) == 51.0
        assert hist.quantile(0.90) == 91.0
        assert hist.quantile(0.99) == 100.0
        summary = hist.summary()
        assert summary["p50"] == 51.0
        assert summary["p90"] == 91.0
        assert summary["p99"] == 100.0

    def test_quantile_fraction_range(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_empty_summary_is_all_zero(self):
        summary = Histogram("h").summary()
        assert summary == {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                           "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}

    def test_reservoir_is_bounded_but_totals_exact(self):
        hist = Histogram("h")
        total = HISTOGRAM_RESERVOIR + 100
        for value in range(total):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == total
        assert summary["min"] == 0.0  # exact even after FIFO eviction
        assert summary["max"] == float(total - 1)
        # Quantiles come from the newest HISTOGRAM_RESERVOIR observations.
        assert hist.quantile(0.0) == 100.0

    def test_reset(self):
        hist = Histogram("h")
        hist.observe(1.0)
        hist.reset()
        assert hist.count == 0
        assert hist.summary()["count"] == 0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.histogram("a.h") is registry.histogram("a.h")

    def test_cross_type_name_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError, match="different instrument type"):
            registry.gauge("a.b")
        with pytest.raises(ValueError):
            registry.histogram("a.b")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_snapshot_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("z.count").increment(2)
        registry.counter("a.count").increment(1)
        registry.gauge("g.level").set(0.5)
        registry.histogram("h.lat").observe(1.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.count", "z.count"]
        assert snap["counters"]["z.count"] == 2
        assert snap["gauges"]["g.level"] == 0.5
        assert snap["histograms"]["h.lat"]["count"] == 1

    def test_reset_keeps_registrations(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.increment(3)
        registry.reset()
        assert registry.counter("a.b") is counter
        assert counter.value == 0


class TestHitRates:
    def test_derives_rate_from_pairs(self):
        rates = hit_rates({"cache.hits": 3, "cache.misses": 1})
        assert rates == {"cache.hit_rate": pytest.approx(0.75)}

    def test_skips_unpaired_and_empty(self):
        assert hit_rates({"cache.hits": 3}) == {}
        assert hit_rates({"cache.hits": 0, "cache.misses": 0}) == {}


class TestGlobalSwitch:
    def test_disabled_span_is_shared_noop(self, clean_obs):
        obs.disable()
        assert obs.span("anything") is NULL_SPAN
        with obs.span("anything") as tags:
            assert tags == {}
        assert obs.tracer.spans == []

    def test_enabled_span_records(self, clean_obs):
        obs.enable()
        with obs.span("work", category="test", plan="t2 d2 p2") as tags:
            tags["extra"] = 1
        spans = obs.tracer.spans
        assert len(spans) == 1
        assert spans[0].name == "work"
        assert spans[0].category == "test"
        assert spans[0].tags == {"plan": "t2 d2 p2", "extra": 1}

    def test_observe_and_gauge_are_gated(self, clean_obs):
        obs.disable()
        obs.observe("test.lat", 1.0)
        obs.set_gauge("test.level", 5.0)
        snap = obs.snapshot()
        assert "test.lat" not in snap["histograms"]
        assert "test.level" not in snap["gauges"]
        obs.enable()
        obs.observe("test.lat", 1.0)
        obs.set_gauge("test.level", 5.0)
        snap = obs.snapshot()
        assert snap["histograms"]["test.lat"]["count"] == 1
        assert snap["gauges"]["test.level"] == 5.0

    def test_count_is_always_on(self, clean_obs):
        obs.disable()
        obs.count("test.events", 2)
        assert obs.snapshot()["counters"]["test.events"] == 2

    def test_snapshot_carries_derived_and_span_count(self, clean_obs):
        obs.enable()
        obs.count("test.cache.hits", 3)
        obs.count("test.cache.misses", 1)
        with obs.span("s"):
            pass
        snap = obs.snapshot()
        assert snap["derived"]["hit_rates"]["test.cache.hit_rate"] == 0.75
        assert snap["spans_recorded"] == 1
        assert snap["enabled"] is True

    def test_save_and_load_snapshot_round_trip(self, clean_obs, tmp_path):
        obs.enable()
        obs.count("test.events")
        obs.observe("test.lat", 2.0)
        path = obs.save_snapshot(tmp_path / "snap.json")
        loaded = obs.load_snapshot(path)
        assert loaded["counters"]["test.events"] == 1
        assert loaded["histograms"]["test.lat"]["count"] == 1

    def test_default_snapshot_path_env_override(self, clean_obs, monkeypatch):
        monkeypatch.setenv(obs.ENV_SNAPSHOT, "/tmp/custom.json")
        assert str(obs.default_snapshot_path()) == "/tmp/custom.json"

    def test_format_snapshot(self, clean_obs):
        obs.enable()
        obs.count("test.cache.hits", 1)
        obs.count("test.cache.misses", 1)
        obs.observe("test.lat", 4.0)
        text = obs.format_snapshot(obs.snapshot())
        assert "counters" in text
        assert "test.cache.hits" in text
        assert "50.0%" in text
        assert "p50=4" in text
        assert "spans recorded : 0" in text

    def test_format_empty_snapshot(self, clean_obs):
        text = obs.format_snapshot({})
        assert "no metrics recorded" in text


class TestTracer:
    def test_nesting_depth_recorded(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {span.name: span for span in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        # inner completes first (completion order)
        assert tracer.spans[0].name == "inner"

    def test_span_duration_non_negative(self):
        tracer = SpanTracer()
        with tracer.span("s"):
            pass
        assert tracer.spans[0].duration_s >= 0.0

    def test_threads_get_distinct_dense_indices(self):
        tracer = SpanTracer()
        with tracer.span("main-span"):
            pass

        def worker():
            with tracer.span("worker-span"):
                pass

        thread = threading.Thread(target=worker, name="obs-worker")
        thread.start()
        thread.join()
        by_name = {span.name: span for span in tracer.spans}
        assert by_name["main-span"].thread != by_name["worker-span"].thread
        assert {by_name["main-span"].thread,
                by_name["worker-span"].thread} == {0, 1}

    def test_chrome_trace_events(self):
        tracer = SpanTracer()
        with tracer.span("replay", category="engine", tasks=10):
            pass
        events = tracer.chrome_trace()
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert any(e["name"] == "process_name"
                   and e["args"]["name"] == "repro engine" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)
        assert len(spans) == 1
        span = spans[0]
        assert span["name"] == "replay"
        assert span["cat"] == "engine"
        assert span["pid"] == ENGINE_PID
        assert span["args"] == {"depth": 0, "tasks": 10}
        assert span["dur"] >= 0.0

    def test_reset_drops_spans(self):
        tracer = SpanTracer()
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.spans == []

    def test_exception_still_records_span(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert [span.name for span in tracer.spans] == ["failing"]
