"""Unit tests for the contention-aware communication model extension."""

import pytest

from repro.config.system import multi_node, single_node
from repro.errors import ConfigError
from repro.graph.operators import (CommKind, CommOperator, CommScope,
                                   data_allreduce, pipeline_send_recv)
from repro.hardware.interconnect import LinkType
from repro.profiling.advanced import ContentionAwareNcclModel
from repro.profiling.nccl import MIB, NcclModel


@pytest.fixture
def advanced():
    return ContentionAwareNcclModel(multi_node(8))


class TestCorrections:
    def test_contention_factor_grows_logarithmically(self, advanced):
        assert advanced.contention_factor(1) == 1.0
        f2 = advanced.contention_factor(2)
        f4 = advanced.contention_factor(4)
        f8 = advanced.contention_factor(8)
        assert 1.0 < f2 < f4 < f8
        # Logarithmic: equal increments per doubling.
        assert f4 - f2 == pytest.approx(f8 - f4)

    def test_straggler_margin_grows_with_group(self, advanced):
        assert advanced.straggler_margin(1) == 0.0
        assert advanced.straggler_margin(64) > advanced.straggler_margin(8)

    def test_internode_allreduce_slower_than_basic(self, advanced):
        basic = NcclModel(multi_node(8))
        size = 256 * MIB
        base = basic.allreduce_time(size, 8, LinkType.INTER_NODE)
        corrected = advanced.internode_allreduce_time(size, 8,
                                                      concurrent_groups=8)
        assert corrected > base

    def test_no_contention_adds_only_overheads(self, advanced):
        basic = NcclModel(multi_node(8))
        size = 256 * MIB
        base = basic.allreduce_time(size, 8, LinkType.INTER_NODE)
        corrected = advanced.internode_allreduce_time(size, 8,
                                                      concurrent_groups=1)
        extra = corrected - base
        assert extra == pytest.approx(advanced.launch_overhead
                                      + advanced.straggler_margin(8))


class TestDispatch:
    def test_internode_dp_allreduce_uses_corrections(self, advanced):
        comm = data_allreduce(256 * MIB, 8, LinkType.INTER_NODE,
                              concurrent_groups=8)
        plain = data_allreduce(256 * MIB, 8, LinkType.INTER_NODE,
                               concurrent_groups=1)
        assert advanced.time(comm) > advanced.time(plain)

    def test_intranode_path_falls_back_to_profile_table(self):
        system = single_node()
        advanced = ContentionAwareNcclModel(system)
        basic = NcclModel(system)
        comm = CommOperator(kind=CommKind.ALL_REDUCE, scope=CommScope.TENSOR,
                            size_bytes=64 * MIB, group_size=8,
                            link=LinkType.INTRA_NODE)
        assert advanced.time(comm) == pytest.approx(basic.time(comm))

    def test_sendrecv_unchanged(self, advanced):
        basic = NcclModel(multi_node(8))
        comm = pipeline_send_recv(2, 2048, 4096, LinkType.INTER_NODE)
        assert advanced.time(comm) == pytest.approx(basic.time(comm))

    def test_interference_passes_through_to_intranode(self):
        system = single_node()
        noisy = ContentionAwareNcclModel(system, interference=1.3)
        clean = ContentionAwareNcclModel(system)
        comm = CommOperator(kind=CommKind.ALL_REDUCE, scope=CommScope.TENSOR,
                            size_bytes=64 * MIB, group_size=8,
                            link=LinkType.INTRA_NODE)
        assert noisy.time(comm) == pytest.approx(1.3 * clean.time(comm))


class TestValidation:
    def test_rejects_negative_knobs(self):
        with pytest.raises(ConfigError):
            ContentionAwareNcclModel(multi_node(2), contention_per_group=-0.1)
        with pytest.raises(ConfigError):
            ContentionAwareNcclModel(multi_node(2), launch_overhead=-1e-6)

    def test_improves_multinode_prediction(self):
        """End-to-end: the corrected model's prediction sits closer to
        the testbed measurement than the basic model's."""
        from repro.config.parallelism import ParallelismConfig, TrainingConfig
        from repro.config.presets import MEGATRON_18_4B
        from repro.graph.builder import Granularity
        from repro.sim.estimator import VTrain
        from repro.testbed.emulator import TestbedEmulator

        system = multi_node(8)
        plan = ParallelismConfig(tensor=8, data=8, pipeline=1,
                                 micro_batch_size=4,
                                 gradient_bucketing=False)
        training = TrainingConfig(global_batch_size=1024)
        measured = TestbedEmulator(system).measure_time(MEGATRON_18_4B, plan,
                                                        training)
        basic = VTrain(system, granularity=Granularity.OPERATOR,
                       check_memory_feasibility=False).predict(
            MEGATRON_18_4B, plan, training).iteration_time
        corrected = VTrain(system, granularity=Granularity.OPERATOR,
                           check_memory_feasibility=False,
                           nccl=ContentionAwareNcclModel(
                               system, interference=1.30,
                               straggler_slack=0.04)).predict(
            MEGATRON_18_4B, plan, training).iteration_time
        assert abs(corrected - measured) < abs(basic - measured)
