"""Unit tests for the profiling module: decomposition, CUPTI, lookup."""

import pytest

from repro.config.parallelism import RecomputeMode
from repro.graph.operators import CompOperator, OpKind
from repro.hardware.gpu import A100_80GB
from repro.hardware.kernels import DeviceModel, KernelKind
from repro.profiling.cupti import CuptiTracer
from repro.profiling.decomposition import OperatorDecomposer
from repro.profiling.lookup import OperatorToTaskTable


@pytest.fixture
def decomposer():
    return OperatorDecomposer(DeviceModel(A100_80GB))


def mha(kind=OpKind.FWD_MHA, t=2, recompute=RecomputeMode.NONE):
    return CompOperator(kind=kind, micro_batch=2, seq_length=128,
                        hidden_size=512, num_heads=8, tensor_parallel=t,
                        recompute=recompute)


def ffn(kind=OpKind.FWD_FFN, t=2, recompute=RecomputeMode.NONE):
    return CompOperator(kind=kind, micro_batch=2, seq_length=128,
                        hidden_size=512, num_heads=8, tensor_parallel=t,
                        recompute=recompute)


class TestDecomposition:
    def test_fwd_mha_kernel_mix(self, decomposer):
        kernels = decomposer.decompose(mha())
        names = [k.name for k in kernels]
        assert any("qkv_proj" in n for n in names)
        assert any("softmax" in n for n in names)
        assert any("attn_context" in n for n in names)
        assert any("layer_norm" in n for n in names)

    def test_fwd_ffn_has_two_gemms(self, decomposer):
        kernels = decomposer.decompose(ffn())
        gemms = [k for k in kernels if k.kind is KernelKind.GEMM]
        assert len(gemms) == 2

    def test_backward_has_dgrad_and_wgrad(self, decomposer):
        kernels = decomposer.decompose(ffn(kind=OpKind.BWD_FFN))
        names = " ".join(k.name for k in kernels)
        assert "dgrad" in names and "wgrad" in names

    def test_backward_flops_about_twice_forward(self, decomposer):
        fwd = sum(k.flops for k in decomposer.decompose(ffn()))
        bwd = sum(k.flops for k in decomposer.decompose(
            ffn(kind=OpKind.BWD_FFN)))
        assert bwd == pytest.approx(2 * fwd, rel=0.15)

    def test_full_recompute_replays_forward(self, decomposer):
        plain = decomposer.decompose(mha(kind=OpKind.BWD_MHA))
        recomputed = decomposer.decompose(
            mha(kind=OpKind.BWD_MHA, recompute=RecomputeMode.FULL))
        assert len(recomputed) > len(plain)
        fwd_len = len(decomposer.decompose(mha()))
        assert len(recomputed) == len(plain) + fwd_len

    def test_selective_recompute_replays_attention_core(self, decomposer):
        plain = decomposer.decompose(mha(kind=OpKind.BWD_MHA))
        selective = decomposer.decompose(
            mha(kind=OpKind.BWD_MHA, recompute=RecomputeMode.SELECTIVE))
        full = decomposer.decompose(
            mha(kind=OpKind.BWD_MHA, recompute=RecomputeMode.FULL))
        assert len(plain) < len(selective) < len(full)

    def test_ffn_selective_recompute_is_free(self, decomposer):
        """Selective recompute only touches attention, not the FFN."""
        plain = decomposer.decompose(ffn(kind=OpKind.BWD_FFN))
        selective = decomposer.decompose(
            ffn(kind=OpKind.BWD_FFN, recompute=RecomputeMode.SELECTIVE))
        assert len(plain) == len(selective)

    def test_tensor_parallel_shrinks_duration(self, decomposer):
        t1 = sum(k.duration for k in decomposer.decompose(mha(t=1)))
        t4 = sum(k.duration for k in decomposer.decompose(mha(t=4)))
        assert t4 < t1

    def test_lm_head_dominated_by_vocab_gemm(self, decomposer):
        op = CompOperator(kind=OpKind.FWD_LM_HEAD, micro_batch=2,
                          seq_length=128, hidden_size=512, num_heads=8,
                          tensor_parallel=1, vocab_size=32_000)
        kernels = decomposer.decompose(op)
        gemm = max(kernels, key=lambda k: k.flops)
        assert gemm.flops == pytest.approx(2 * 256 * 32_000 * 512)

    def test_weight_update_kernels(self, decomposer):
        op = CompOperator(kind=OpKind.WEIGHT_UPDATE, num_params=1_000_000)
        kernels = decomposer.decompose(op)
        assert any(k.kind is KernelKind.OPTIMIZER for k in kernels)

    def test_embedding_ops(self, decomposer):
        fwd = CompOperator(kind=OpKind.FWD_EMBEDDING, micro_batch=1,
                           seq_length=64, hidden_size=256, num_heads=4,
                           tensor_parallel=1, vocab_size=1024)
        kernels = decomposer.decompose(fwd)
        assert any(k.kind is KernelKind.EMBEDDING for k in kernels)


class TestCuptiTracer:
    def test_trace_records_have_correlation_ids(self):
        tracer = CuptiTracer(DeviceModel(A100_80GB))
        tracer.trace_operator(mha())
        ids = [record.correlation_id for record in tracer.records]
        assert ids == list(range(len(ids)))

    def test_task_to_layer_mapping(self):
        tracer = CuptiTracer(DeviceModel(A100_80GB))
        op = mha()
        kernels = tracer.trace_operator(op)
        assert tracer.kernels_for(op) == kernels

    def test_determinism_across_runs(self):
        tracer = CuptiTracer(DeviceModel(A100_80GB))
        first = tracer.trace_operator(mha())
        second = tracer.trace_operator(mha())
        assert [k.duration for k in first] == [k.duration for k in second]

    def test_stats_count_everything(self):
        tracer = CuptiTracer(DeviceModel(A100_80GB))
        tracer.trace_operator(mha())
        tracer.trace_operator(ffn())
        assert tracer.stats.operators_profiled == 2
        assert tracer.stats.kernels_traced == len(tracer.records)
        assert len(tracer.stats.signatures) == 2

    def test_reset(self):
        tracer = CuptiTracer(DeviceModel(A100_80GB))
        tracer.trace_operator(mha())
        tracer.reset()
        assert not tracer.records
        assert tracer.stats.operators_profiled == 0


class TestLookupTable:
    def test_necessary_operator_profiled_once(self):
        """The Section III-C O(1) property: repeated lookups of the same
        signature never re-profile."""
        tracer = CuptiTracer(DeviceModel(A100_80GB))
        table = OperatorToTaskTable(tracer)
        for _ in range(100):
            table.tasks_for(mha())
        assert table.num_profiled == 1
        assert table.num_reused == 99
        assert tracer.stats.operators_profiled == 1

    def test_distinct_signatures_profiled_separately(self):
        table = OperatorToTaskTable(CuptiTracer(DeviceModel(A100_80GB)))
        table.tasks_for(mha(t=1))
        table.tasks_for(mha(t=2))
        assert table.num_profiled == 2
        assert len(table) == 2

    def test_duration_is_sum_of_kernels(self):
        table = OperatorToTaskTable(CuptiTracer(DeviceModel(A100_80GB)))
        op = ffn()
        assert table.duration_of(op) == pytest.approx(
            sum(k.duration for k in table.tasks_for(op)))

    def test_contains(self):
        table = OperatorToTaskTable(CuptiTracer(DeviceModel(A100_80GB)))
        op = mha()
        assert op not in table
        table.tasks_for(op)
        assert op in table
