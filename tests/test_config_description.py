"""Unit tests for the input description file (Figure 4, step 1)."""

import pytest

from repro.config.description import InputDescription
from repro.config.parallelism import (ParallelismConfig, PipelineSchedule,
                                      RecomputeMode)
from repro.config.system import single_node
from repro.errors import ConfigError, InfeasibleConfigError


@pytest.fixture
def description(tiny_model, training):
    plan = ParallelismConfig(tensor=2, data=2, pipeline=2, micro_batch_size=2,
                             schedule=PipelineSchedule.GPIPE,
                             recompute=RecomputeMode.FULL)
    return InputDescription(model=tiny_model, system=single_node(),
                            plan=plan, training=training)


class TestRoundTrip:
    def test_dict_round_trip(self, description):
        rebuilt = InputDescription.from_dict(description.to_dict())
        assert rebuilt.model == description.model
        assert rebuilt.plan == description.plan
        assert rebuilt.training == description.training
        assert rebuilt.system.num_gpus == description.system.num_gpus
        assert rebuilt.system.gpu == description.system.gpu

    def test_json_round_trip(self, description):
        rebuilt = InputDescription.from_json(description.to_json())
        assert rebuilt.plan.schedule is PipelineSchedule.GPIPE
        assert rebuilt.plan.recompute is RecomputeMode.FULL

    def test_file_round_trip(self, description, tmp_path):
        path = tmp_path / "desc.json"
        description.save(path)
        rebuilt = InputDescription.load(path)
        assert rebuilt.model.name == description.model.name


class TestValidation:
    def test_validate_passes_for_consistent_input(self, description):
        assert description.validate() is description

    def test_validate_rejects_gpu_mismatch(self, tiny_model, training):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=1)  # 4 GPUs
        desc = InputDescription(model=tiny_model, system=single_node(),
                                plan=plan, training=training)
        with pytest.raises(InfeasibleConfigError):
            desc.validate()

    def test_missing_section_raises_config_error(self):
        with pytest.raises(ConfigError, match="missing"):
            InputDescription.from_dict({"model": {
                "hidden_size": 64, "num_layers": 1, "seq_length": 8,
                "num_heads": 1}})

    def test_bad_json_raises_config_error(self):
        with pytest.raises(ConfigError, match="JSON"):
            InputDescription.from_json("{not json")

    def test_unknown_gpu_raises(self, description):
        payload = description.to_dict()
        payload["system"]["gpu"] = "TPU-v9"
        with pytest.raises(ConfigError, match="unknown GPU"):
            InputDescription.from_dict(payload)

    def test_bad_field_raises_config_error(self, description):
        payload = description.to_dict()
        payload["parallelism"]["tensor"] = "eight"
        with pytest.raises(ConfigError):
            InputDescription.from_dict(payload)
