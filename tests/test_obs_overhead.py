"""Observability must cost (near) nothing when disabled.

The hard perf gate lives in ``benchmarks/bench_sim_speed.py`` (warm
predict must stay within ``OBS_DISABLED_HEADROOM`` of the committed
baseline); these tests pin the mechanism that makes it hold — a
disabled switch records *nothing* and allocates nothing on the span
path — and its complement, that enabling actually records.
"""

import pytest

from repro import obs
from repro.config.parallelism import ParallelismConfig
from repro.config.system import single_node
from repro.obs.tracer import NULL_SPAN
from repro.sim.estimator import VTrain


@pytest.fixture
def clean_obs():
    was_enabled = obs.enabled()
    obs.reset()
    yield obs
    if was_enabled:
        obs.enable()
    else:
        obs.disable()
    obs.reset()


def run_predict(tiny_model, training):
    vtrain = VTrain(single_node(), check_memory_feasibility=False)
    plan = ParallelismConfig(tensor=2, data=2, pipeline=2, micro_batch_size=2)
    return vtrain.predict(tiny_model, plan, training)


class TestDisabledRecordsNothing:
    def test_predict_leaves_tracer_and_histograms_empty(
            self, clean_obs, tiny_model, training):
        obs.disable()
        run_predict(tiny_model, training)
        snap = obs.snapshot()
        assert snap["spans_recorded"] == 0
        assert all(h["count"] == 0 for h in snap["histograms"].values())
        assert snap["gauges"] == {} or all(
            v == 0.0 for v in snap["gauges"].values())

    def test_disabled_span_is_one_shared_object(self, clean_obs):
        obs.disable()
        # Identity, not just equality: the disabled path must not
        # allocate a fresh context manager per call.
        assert obs.span("a") is obs.span("b") is NULL_SPAN

    def test_counters_still_track_caches(self, clean_obs, tiny_model,
                                         training):
        from repro.graph.builder import (clear_structure_cache,
                                         structure_cache_stats)
        obs.disable()
        clear_structure_cache()
        run_predict(tiny_model, training)
        stats = structure_cache_stats()
        assert stats["hits"] + stats["misses"] >= 1


class TestEnabledRecords:
    def test_predict_records_spans_and_histograms(
            self, clean_obs, tiny_model, training):
        obs.enable()
        run_predict(tiny_model, training)
        snap = obs.snapshot()
        span_names = {span.name for span in obs.tracer.spans}
        assert {"predict", "memory_check", "builder_init",
                "replay"} <= span_names
        # cold predicts compile, warm predicts refill durations
        assert span_names & {"structure_build", "duration_fill"}
        assert snap["histograms"]["sim.replay_s"]["count"] >= 1
        assert snap["histograms"]["sim.predict_total_s"]["count"] == 1
        assert snap["histograms"]["sim.replay_tasks_per_s"]["p50"] > 0

    def test_predict_prepared_records_replay_throughput(
            self, clean_obs, tiny_model, training):
        obs.enable()
        vtrain = VTrain(single_node(), check_memory_feasibility=False)
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        footprint, prepared = vtrain.prepare_checked(tiny_model, plan,
                                                     training)
        before = obs.snapshot()["histograms"]["sim.replay_s"]["count"]
        vtrain.predict_prepared(tiny_model, training,
                                [(plan, footprint, prepared)])
        after = obs.snapshot()["histograms"]["sim.replay_s"]["count"]
        assert after == before + 1
