"""End-to-end tests for interleaved virtual-pipeline schedules.

Covers the whole stack: config validation and serialisation, graph
emission (per-chunk layer slices, wrap-around P2P), the structure-cache
fingerprint, the compute-only bubble closed form, memory accounting,
DSE sweeps, and the testbed emulator.
"""

import pytest

from repro.config.model import ModelConfig
from repro.config.parallelism import (ParallelismConfig, PipelineSchedule,
                                      TrainingConfig, validate_plan)
from repro.config.system import single_node
from repro.errors import ConfigError, InfeasibleConfigError
from repro.graph.builder import (Granularity, GraphBuilder,
                                 clear_structure_cache,
                                 structure_fingerprint)
from repro.graph.pipeline import (FORWARD, pipeline_bubble_fraction,
                                  schedule_order)
from repro.graph.structure import (COMPUTE_STREAM, GraphAssembler,
                                   KIND_COMPUTE, KIND_PP_COMM)
from repro.sim.engine import simulate
from repro.sim.estimator import VTrain


@pytest.fixture
def deep_model() -> ModelConfig:
    """16 layers so p=4 stages split into v ∈ {1, 2, 4} chunks."""
    return ModelConfig(hidden_size=512, num_layers=16, seq_length=128,
                       num_heads=8, vocab_size=32_000, name="deep16")


@pytest.fixture
def batch() -> TrainingConfig:
    return TrainingConfig(global_batch_size=32)


def interleaved_plan(v: int, **kwargs) -> ParallelismConfig:
    return ParallelismConfig(tensor=1, data=1, pipeline=4,
                             micro_batch_size=1, virtual_stages=v, **kwargs)


class TestConfig:
    def test_default_is_plain_schedule(self):
        assert ParallelismConfig(tensor=1, data=1, pipeline=2
                                 ).virtual_stages == 1

    def test_requires_pipeline(self):
        with pytest.raises(ConfigError, match="pipeline"):
            ParallelismConfig(tensor=1, data=1, pipeline=1, virtual_stages=2)

    def test_requires_1f1b(self):
        with pytest.raises(ConfigError, match="1f1b"):
            ParallelismConfig(tensor=1, data=1, pipeline=2, virtual_stages=2,
                              schedule=PipelineSchedule.GPIPE)

    def test_describe_appends_v(self):
        plan = interleaved_plan(2)
        assert plan.describe().endswith("v=2")
        assert "v=" not in interleaved_plan(1).describe()

    def test_to_dict_omits_default(self):
        """Pre-interleaving payloads (and the PR-1 cache fingerprints
        hashed from them) must be byte-identical."""
        assert "virtual_stages" not in interleaved_plan(1).to_dict()
        assert interleaved_plan(2).to_dict()["virtual_stages"] == 2

    def test_round_trip(self):
        plan = interleaved_plan(2)
        assert ParallelismConfig.from_dict(plan.to_dict()) == plan
        legacy = interleaved_plan(1)
        assert ParallelismConfig.from_dict(legacy.to_dict()) == legacy

    def test_validate_plan_chunk_divisibility(self, deep_model, batch):
        plan = interleaved_plan(3)  # 4 layers/stage, 3 does not divide
        with pytest.raises(InfeasibleConfigError, match="virtual stages"):
            validate_plan(deep_model, plan, batch, plan.total_gpus)

    def test_validate_plan_micro_batch_groups(self, deep_model):
        plan = interleaved_plan(2)
        uneven = TrainingConfig(global_batch_size=6)  # NMB=6, p=4
        with pytest.raises(InfeasibleConfigError, match="multiple"):
            validate_plan(deep_model, plan, uneven, plan.total_gpus)


class TestFingerprint:
    def test_v1_fingerprint_unchanged(self, deep_model, batch):
        """The v=1 fingerprint carries no v part — cached pre-interleaving
        structures stay addressable under their exact old keys."""
        fp = structure_fingerprint(deep_model, interleaved_plan(1), batch,
                                   Granularity.OPERATOR)
        assert "v=" not in fp

    def test_v_distinguishes_structures(self, deep_model, batch):
        fps = {structure_fingerprint(deep_model, interleaved_plan(v), batch,
                                     Granularity.OPERATOR)
               for v in (1, 2, 4)}
        assert len(fps) == 3

    def test_structure_cache_separates_v(self, deep_model, batch):
        clear_structure_cache()
        vtrain = VTrain(single_node())
        vtrain.predict(deep_model, interleaved_plan(1), batch)
        vtrain.predict(deep_model, interleaved_plan(2), batch)
        assert vtrain.structure_cache_misses == 2
        vtrain.predict(deep_model, interleaved_plan(2), batch)
        assert vtrain.structure_cache_hits == 1


class TestGraphEmission:
    @pytest.mark.parametrize("granularity", list(Granularity))
    def test_valid_dag_every_granularity(self, granularity, deep_model,
                                         batch):
        vtrain = VTrain(single_node(), granularity=granularity)
        graph = vtrain.build_graph(deep_model, interleaved_plan(2), batch)
        graph.validate_acyclic()
        assert simulate(graph).iteration_time > 0

    def test_wrap_around_p2p_tasks(self, deep_model, batch):
        """Each chunk boundary adds 2*NMB wrap-around sends between the
        last and first stage, costed through the network model."""
        vtrain = VTrain(single_node())
        plan = interleaved_plan(2)
        nmb = 32  # B=32, d=1, m=1
        builder = GraphBuilder(deep_model, vtrain.system, plan, batch,
                               vtrain.lookup, vtrain.nccl,
                               vtrain.granularity)
        structure = builder.compile()
        assert builder.wrap_time > 0
        assert structure.slot_keys.count("pp:wrap") == 1
        wrap_tasks = sum(
            1 for pos in range(structure.num_tasks)
            if structure.slot_keys[structure.slot_index[pos]] == "pp:wrap")
        assert wrap_tasks == 2 * (plan.virtual_stages - 1) * nmb
        forward_wraps = [label for label in structure.label
                         if label.startswith("s3/c0->s0/c1/F")]
        assert len(forward_wraps) == nmb

    def test_p2p_task_count_scales_with_v(self, deep_model, batch):
        """Interleaving multiplies boundary traffic by v and adds the
        wrap hops: 2*NMB*((p-1)*v + v-1) P2P tasks in total."""
        vtrain = VTrain(single_node())
        for v in (1, 2, 4):
            graph = vtrain.build_graph(deep_model, interleaved_plan(v),
                                       batch)
            p2p = sum(1 for n in graph.nodes if n.kind == KIND_PP_COMM)
            assert p2p == 2 * 32 * (3 * v + v - 1)

    def test_layer_coverage_per_chunk(self, deep_model, batch):
        """Stage-local layers 0..3 split as 0-1 (chunk 0) and 2-3
        (chunk 1); every layer appears in exactly one chunk."""
        vtrain = VTrain(single_node())
        graph = vtrain.build_graph(deep_model, interleaved_plan(2), batch)
        fwd_mha = [n.label for n in graph.nodes
                   if n.label.startswith("s0/") and "/F0/" in n.label
                   and n.label.endswith("/mha")]
        assert fwd_mha == ["s0/c0/F0/l0/mha", "s0/c0/F0/l1/mha",
                           "s0/c1/F0/l2/mha", "s0/c1/F0/l3/mha"]

    def test_stage_granularity_bucket_segments(self, deep_model, batch):
        """Buckets spanning chunk boundaries split at the intersection
        and anchor in the chunk holding their shallowest layer."""
        plan = interleaved_plan(2, gradient_bucketing=True,
                                num_gradient_buckets=4)
        vtrain = VTrain(single_node(), granularity=Granularity.STAGE)
        prediction = vtrain.predict(deep_model, plan, batch)
        assert prediction.iteration_time > 0


class TestBubbleClosedForm:
    """Uniform-duration replay matches ``(p-1)/(v*NMB + p-1)`` exactly
    in the compute-only idealization."""

    @staticmethod
    def ideal_graph(p, v, nmb):
        asm = GraphAssembler()
        f, b = {}, {}
        for stage in range(p):
            for unit in schedule_order(PipelineSchedule.ONE_F_ONE_B, stage,
                                       p, nmb, virtual_stages=v):
                task = asm.add(stage, COMPUTE_STREAM, 1.0, KIND_COMPUTE,
                               f"s{stage}/{unit.phase}{unit.chunk}"
                               f".{unit.micro_batch}")
                target = f if unit.phase == FORWARD else b
                target[(stage, unit.chunk, unit.micro_batch)] = task
        for (stage, c, m), task in f.items():
            if stage > 0:
                asm.link(f[(stage - 1, c, m)], task)
            elif c > 0:
                asm.link(f[(p - 1, c - 1, m)], task)
        for (stage, c, m), task in b.items():
            if stage < p - 1:
                asm.link(b[(stage + 1, c, m)], task)
            elif c < v - 1:
                asm.link(b[(0, c + 1, m)], task)
        return asm.finish(num_devices=p)

    @pytest.mark.parametrize("p,nmb", [(2, 4), (4, 8), (4, 16), (8, 8)])
    def test_matches_formula_and_monotone(self, p, nmb):
        fractions = []
        for v in (1, 2, 4):
            makespan = simulate(self.ideal_graph(p, v, nmb)).iteration_time
            busy = 2.0 * v * nmb
            fraction = (makespan - busy) / makespan
            assert fraction == pytest.approx(
                pipeline_bubble_fraction(p, nmb, v))
            fractions.append(fraction)
        assert fractions == sorted(fractions, reverse=True)


class TestPrediction:
    def test_iteration_time_improves_monotonically(self, deep_model, batch):
        for granularity in (Granularity.OPERATOR, Granularity.STAGE):
            vtrain = VTrain(single_node(), granularity=granularity)
            times = [vtrain.predict(deep_model, interleaved_plan(v),
                                    batch).iteration_time
                     for v in (1, 2, 4)]
            assert times[0] > times[1] > times[2]

    def test_granularities_agree(self, deep_model, batch):
        plan = interleaved_plan(2)
        times = [VTrain(single_node(), granularity=g).predict(
            deep_model, plan, batch).iteration_time
            for g in (Granularity.KERNEL, Granularity.OPERATOR)]
        assert times[0] == pytest.approx(times[1], rel=1e-9)

    def test_interleaving_costs_activation_memory(self, deep_model, batch):
        """Interleaving trades memory for bubble: stage 0 holds
        ``p + (p-1)/v`` layer-windows instead of 1F1B's ``p``, so every
        interleaved variant out-eats the plain schedule (the overhead
        peaks at v=2 and amortises as v grows — Narayanan et al. §2.2)."""
        from repro.memory.footprint import memory_footprint
        acts = {v: memory_footprint(deep_model, interleaved_plan(v),
                                    batch).activations
                for v in (1, 2, 4)}
        assert acts[1] < acts[4] < acts[2]


class TestDesignSpace:
    def test_interleaved_plan_dominates(self, deep_model):
        """An MT-NLG-style pipeline-bound sweep: some v>1 plan beats the
        best v=1 plan on iteration time (the acceptance criterion)."""
        from repro.dse.explorer import DesignSpaceExplorer
        from repro.dse.space import SearchSpace
        training = TrainingConfig(global_batch_size=16)
        explorer = DesignSpaceExplorer(deep_model, training)
        base = dict(max_tensor=1, max_data=2, max_pipeline=8,
                    micro_batch_sizes=(1, 2))
        plain = explorer.explore(
            space=SearchSpace(**base, virtual_stages=(1,)), num_gpus=8)
        interleaved = explorer.explore(
            space=SearchSpace(**base, virtual_stages=(1, 2, 4)), num_gpus=8)
        best_plain = plain.best_by_iteration_time()
        best_any = interleaved.best_by_iteration_time()
        assert best_any.plan.virtual_stages > 1
        assert best_any.iteration_time < best_plain.iteration_time

    def test_enumeration_skips_invalid_combos(self, deep_model):
        from repro.dse.space import SearchSpace, enumerate_plans
        training = TrainingConfig(global_batch_size=16)
        space = SearchSpace(max_tensor=1, max_data=4, max_pipeline=8,
                            micro_batch_sizes=(1, 2),
                            virtual_stages=(1, 2, 3))
        plans = list(enumerate_plans(deep_model, training, space=space,
                                     max_gpus=8))
        for plan in plans:
            if plan.virtual_stages > 1:
                assert plan.pipeline > 1
                lps = deep_model.num_layers // plan.pipeline
                assert lps % plan.virtual_stages == 0
                nmb = (training.global_batch_size // plan.data
                       // plan.micro_batch_size)
                assert nmb % plan.pipeline == 0
        assert any(plan.virtual_stages == 2 for plan in plans)

    @pytest.mark.slow
    def test_preset_dominance_megatron(self):
        """MT-NLG-style preset: the --virtual-stages sweep finds a plan
        dominating the best v=1 plan on a pipeline-bound GPU budget."""
        from repro.config.presets import MODEL_ZOO
        from repro.dse.explorer import DesignSpaceExplorer
        from repro.dse.space import SearchSpace
        model = next(m for m in MODEL_ZOO.values() if "1.7B" in m.name)
        training = TrainingConfig(global_batch_size=16)
        explorer = DesignSpaceExplorer(model, training)
        base = dict(max_tensor=1, max_data=2, max_pipeline=8,
                    micro_batch_sizes=(1, 2))
        plain = explorer.explore(
            space=SearchSpace(**base, virtual_stages=(1,)), num_gpus=8)
        swept = explorer.explore(
            space=SearchSpace(**base, virtual_stages=(1, 2, 3)), num_gpus=8)
        assert swept.best_by_iteration_time().iteration_time < \
            plain.best_by_iteration_time().iteration_time
        assert swept.best_by_iteration_time().plan.virtual_stages > 1

    def test_gpipe_space_rejects_interleaving(self):
        from repro.dse.space import SearchSpace
        with pytest.raises(ConfigError, match="1f1b"):
            SearchSpace(schedule=PipelineSchedule.GPIPE,
                        virtual_stages=(1, 2))

    def test_cli_sweeps_virtual_stages(self, tmp_path, capsys):
        from repro.cli import main
        csv_path = tmp_path / "points.csv"
        code = main(["dse", "megatron-1.7b", "--num-gpus", "8",
                     "--global-batch", "16", "--max-tensor", "1",
                     "--max-data", "2", "--max-pipeline", "8",
                     "--micro-batches", "1", "--virtual-stages", "1", "2",
                     "--zero-stage", "2", "--csv", str(csv_path),
                     "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "| v |" in out  # markdown table gains the v column
        assert "virtual_stages" in csv_path.read_text()


class TestScheduleSuggestion:
    def test_never_suggests_gpipe_for_interleaved_plan(self, deep_model,
                                                       batch):
        """GPipe has no interleaved variant; the suggestion must be one
        the plan can actually adopt."""
        from repro.memory.footprint import suggest_schedule_for_memory
        suggestion = suggest_schedule_for_memory(
            deep_model, interleaved_plan(2), batch, single_node())
        assert suggestion is PipelineSchedule.ONE_F_ONE_B
        interleaved_plan(2).replaced(schedule=suggestion)  # adoptable


class TestBaselines:
    def test_analytical_baseline_sees_smaller_bubble(self, deep_model,
                                                     batch):
        """The closed-form baseline must model the interleaved ramp too,
        so vTrain-vs-baseline comparisons stay meaningful at v>1."""
        from repro.baselines.analytical import AnalyticalModel
        baseline = AnalyticalModel(single_node())
        t1 = baseline.predict_iteration_time(deep_model,
                                             interleaved_plan(1), batch)
        t2 = baseline.predict_iteration_time(deep_model,
                                             interleaved_plan(2), batch)
        assert t2 < t1


class TestTestbed:
    def test_emulator_measures_interleaved_plan(self, deep_model, batch):
        from repro.testbed.emulator import TestbedEmulator
        emulator = TestbedEmulator(single_node())
        plain = emulator.measure(deep_model, interleaved_plan(1), batch)
        inter = emulator.measure(deep_model, interleaved_plan(2), batch)
        assert inter.iteration_time > 0
        assert inter.session_key != plain.session_key
        # Deterministic: measuring twice returns the identical number.
        again = emulator.measure(deep_model, interleaved_plan(2), batch)
        assert again.iteration_time == inter.iteration_time
