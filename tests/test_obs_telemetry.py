"""Tests for the ``repro.obs`` v2 telemetry surface.

Unit coverage for the request-scoped pieces the serving tier composes:
trace-ID context propagation, the tracer's bounded span ring (with the
``obs.spans.dropped`` self-accounting counter), the Prometheus text
renderer, the time-series sampler, the SLO tracker's error-budget
arithmetic, and the cross-process trace stitcher. The serve-level
integration of all of these lives in ``tests/test_serve_telemetry.py``.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import (PROMETHEUS_CONTENT_TYPE, metric_name,
                                  render_prometheus)
from repro.obs.schema import validate
from repro.obs.slo import SLOConfig, SLOTracker
from repro.obs.stitch import stitch_trace, wire_span
from repro.obs.timeseries import ServingTimeSeries
from repro.obs.tracer import SpanTracer

SCHEMA_DIR = Path(__file__).resolve().parent.parent / "schemas"


def load_schema(name: str) -> dict:
    return json.loads((SCHEMA_DIR / name).read_text())


@pytest.fixture(autouse=True)
def clean_slate():
    obs.reset()
    was_enabled = obs.enabled()
    yield
    obs.reset()
    (obs.enable if was_enabled else obs.disable)()


# ---------------------------------------------------------------------------
# Trace-ID context
# ---------------------------------------------------------------------------
class TestTraceContext:
    def test_new_trace_ids_are_distinct_hex(self):
        ids = {obs.new_trace_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(len(t) == 16 and int(t, 16) >= 0 for t in ids)

    def test_bind_and_restore(self):
        assert obs.current_trace_id() is None
        with obs.bind_trace("abc123"):
            assert obs.current_trace_id() == "abc123"
            with obs.bind_trace("nested"):
                assert obs.current_trace_id() == "nested"
            assert obs.current_trace_id() == "abc123"
        assert obs.current_trace_id() is None

    def test_bind_none_is_a_noop_binding(self):
        with obs.bind_trace("outer"):
            with obs.bind_trace(None):
                assert obs.current_trace_id() is None
            assert obs.current_trace_id() == "outer"

    def test_binding_is_thread_local(self):
        seen = {}

        def worker(name: str) -> None:
            with obs.bind_trace(name):
                time.sleep(0.01)
                seen[name] = obs.current_trace_id()

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {f"t{i}": f"t{i}" for i in range(8)}

    def test_spans_auto_tag_the_bound_trace_id(self):
        obs.enable()
        with obs.bind_trace("tid-1"):
            with obs.span("work", "test"):
                pass
        spans = list(obs.tracer.spans)
        assert spans[-1].tags["trace_id"] == "tid-1"


# ---------------------------------------------------------------------------
# Bounded span ring
# ---------------------------------------------------------------------------
class TestSpanRing:
    def test_ring_drops_oldest_and_counts(self):
        tracer = SpanTracer(max_spans=4)
        dropped = []
        tracer.on_drop = lambda n: dropped.append(n)
        for i in range(7):
            with tracer.span(f"s{i}", "test"):
                pass
        names = [s.name for s in tracer.spans]
        assert names == ["s3", "s4", "s5", "s6"]
        assert tracer.dropped == 3
        assert sum(dropped) == 3

    def test_process_tracer_feeds_dropped_counter(self):
        # The process-wide tracer's on_drop is wired to the registry's
        # obs.spans.dropped counter at import time.
        counter = obs.metrics.counter("obs.spans.dropped")
        assert obs.tracer.on_drop == counter.increment
        tracer = SpanTracer(max_spans=2)
        tracer.on_drop = counter.increment
        for i in range(5):
            with tracer.span(f"s{i}", "test"):
                pass
        assert counter.value == 3
        assert len(tracer.spans) == 2

    def test_reset_clears_drop_count(self):
        tracer = SpanTracer(max_spans=1)
        for _ in range(3):
            with tracer.span("s", "test"):
                pass
        assert tracer.dropped == 2
        tracer.reset()
        assert tracer.dropped == 0
        assert not tracer.spans


# ---------------------------------------------------------------------------
# Prometheus rendering
# ---------------------------------------------------------------------------
class TestPrometheus:
    def test_metric_name_sanitisation(self):
        assert metric_name("serve.requests") == "repro_serve_requests"
        assert metric_name("serve.p99-ms") == "repro_serve_p99_ms"
        assert metric_name("9lives") == "repro__9lives"

    def test_render_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").increment(3)
        registry.gauge("serve.slo.burn_rate").set(0.25)
        for value in (0.1, 0.2, 0.3):
            registry.histogram("serve.predict_s").observe(value)
        snap = registry.snapshot()
        text = render_prometheus(snap)
        assert "# TYPE repro_serve_requests counter" in text
        assert "repro_serve_requests 3" in text
        assert "# TYPE repro_serve_slo_burn_rate gauge" in text
        assert "# TYPE repro_serve_predict_s summary" in text
        assert 'repro_serve_predict_s{quantile="0.99"}' in text
        assert "repro_serve_predict_s_count 3" in text
        assert text.endswith("\n")

    def test_derived_hit_rates_render_as_gauges(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").increment(3)
        registry.counter("cache.misses").increment(1)
        snap = registry.snapshot()
        snap["derived"] = {"hit_rates": {"cache.hit_rate": 0.75}}
        text = render_prometheus(snap)
        assert "# TYPE repro_cache_hit_rate gauge" in text
        assert "repro_cache_hit_rate 0.75" in text

    def test_content_type_pins_exposition_version(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


# ---------------------------------------------------------------------------
# Time series
# ---------------------------------------------------------------------------
class TestTimeSeries:
    def test_windowed_rates_between_samples(self):
        registry = MetricsRegistry()
        series = ServingTimeSeries(registry, capacity=10)
        registry.counter("serve.requests").increment(10)
        series.sample_now()
        registry.counter("serve.requests").increment(20)
        time.sleep(0.02)
        sample = series.sample_now()
        assert sample["requests"] == 30
        assert sample["req_per_s"] > 0
        # First sample has no previous window: rate pinned to zero.
        assert series.samples()[0]["req_per_s"] == 0.0

    def test_ring_eviction_counts(self):
        registry = MetricsRegistry()
        series = ServingTimeSeries(registry, capacity=3)
        for _ in range(5):
            series.sample_now()
        assert len(series.samples()) == 3
        assert registry.counter("obs.ts.evicted").value == 2
        assert registry.counter("obs.ts.samples").value == 5

    def test_cache_hit_rate_and_batch_mean(self):
        registry = MetricsRegistry()
        series = ServingTimeSeries(registry, capacity=10)
        series.sample_now()
        registry.counter("serve.requests.predict").increment(4)
        registry.counter("serve.cache.served").increment(2)
        registry.counter("serve.dedup.coalesced").increment(1)
        registry.counter("serve.batch.jobs").increment(6)
        registry.counter("serve.batch.flushes").increment(2)
        sample = series.sample_now()
        assert sample["cache_hit_rate"] == pytest.approx(0.75)
        assert sample["batch_mean"] == pytest.approx(3.0)

    def test_background_sampler_thread(self):
        registry = MetricsRegistry()
        series = ServingTimeSeries(registry, capacity=50, interval_s=0.01)
        series.start()
        try:
            deadline = time.monotonic() + 5.0
            while (len(series.samples()) < 3
                   and time.monotonic() < deadline):
                time.sleep(0.01)
        finally:
            series.stop()
        assert len(series.samples()) >= 3
        series.stop()  # idempotent

    def test_payload_matches_schema(self):
        registry = MetricsRegistry()
        series = ServingTimeSeries(registry, capacity=5)
        series.sample_now()
        series.sample_now()
        validate(series.payload(), load_schema("obs_timeseries.schema.json"))


# ---------------------------------------------------------------------------
# SLO tracking
# ---------------------------------------------------------------------------
def _sample(t: float, requests: int, errors: int,
            p99: float) -> dict:
    return {"t_unix": t, "requests": requests, "errors": errors,
            "p99_s": p99}


class TestSLO:
    def test_healthy_window(self):
        tracker = SLOTracker(SLOConfig(latency_objective_s=0.25,
                                       availability_objective=0.999,
                                       window_s=600.0))
        verdict = tracker.evaluate([
            _sample(0.0, 0, 0, 0.01),
            _sample(60.0, 1000, 0, 0.02),
        ])
        assert verdict["latency"]["ok"]
        assert verdict["availability"]["ok"]
        assert verdict["error_budget"]["remaining"] == pytest.approx(1.0)
        assert verdict["error_budget"]["burn_rate"] == pytest.approx(0.0)

    def test_burn_rate_of_exactly_on_budget(self):
        tracker = SLOTracker(SLOConfig(availability_objective=0.99))
        verdict = tracker.evaluate([
            _sample(0.0, 0, 0, 0.0),
            _sample(60.0, 1000, 10, 0.0),  # 1% errors vs 1% allowed
        ])
        assert verdict["error_budget"]["burn_rate"] == pytest.approx(1.0)
        assert verdict["error_budget"]["consumed"] == pytest.approx(1.0)

    def test_latency_violation(self):
        tracker = SLOTracker(SLOConfig(latency_objective_s=0.1))
        verdict = tracker.evaluate([
            _sample(0.0, 0, 0, 0.05),
            _sample(1.0, 10, 0, 0.5),
        ])
        assert not verdict["latency"]["ok"]
        assert verdict["latency"]["p99_s"] == 0.5

    def test_window_excludes_old_samples(self):
        tracker = SLOTracker(SLOConfig(window_s=100.0))
        verdict = tracker.evaluate([
            _sample(0.0, 0, 0, 9.9),       # outside the window
            _sample(1000.0, 500, 0, 0.01),
            _sample(1060.0, 600, 0, 0.01),
        ])
        assert verdict["window"]["samples"] == 2
        assert verdict["window"]["requests"] == 100
        assert verdict["latency"]["ok"]

    def test_empty_ring_is_healthy_no_data(self):
        tracker = SLOTracker(SLOConfig())
        verdict = tracker.evaluate([])
        assert verdict["window"]["samples"] == 0
        assert verdict["latency"]["ok"]
        assert verdict["error_budget"]["remaining"] == 1.0

    def test_gauges_published_on_registry(self):
        registry = MetricsRegistry()
        tracker = SLOTracker(SLOConfig(availability_objective=0.9),
                             registry=registry)
        tracker.evaluate([
            _sample(0.0, 0, 0, 0.0),
            _sample(1.0, 100, 20, 0.0),  # 20% errors vs 10% allowed
        ])
        assert registry.gauge("serve.slo.burn_rate").value == pytest.approx(
            2.0)
        assert registry.gauge(
            "serve.slo.error_budget_remaining").value == pytest.approx(0.0)
        assert registry.gauge("serve.slo.latency_ok").value == 1.0


# ---------------------------------------------------------------------------
# Stitching
# ---------------------------------------------------------------------------
class TestStitch:
    def test_two_process_trace_with_flow_events(self):
        client = [wire_span("client.call", "client", 100.0, 0.5,
                            method="predict")]
        server = [wire_span("serve.predict", "serve", 100.1, 0.3)]
        payload = stitch_trace(trace_id="tid", client_spans=client,
                               server_spans=server,
                               client_pid=11, server_pid=22)
        validate(payload, load_schema("chrome_trace.schema.json"))
        events = payload["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        assert {m["pid"] for m in metas} == {11, 22}
        spans = [e for e in events if e["ph"] == "X"]
        assert {s["name"] for s in spans} == {"client.call",
                                              "serve.predict"}
        # Microsecond timestamps are relative to the earliest start.
        assert min(s["ts"] for s in spans) == 0.0
        flows = [e for e in events if e["ph"] in ("s", "f")]
        assert len(flows) == 4
        by_id = {e["id"] for e in flows}
        assert by_id == {"tid:req", "tid:res"}
        finishes = [e for e in flows if e["ph"] == "f"]
        assert all(e["bp"] == "e" for e in finishes)
        assert payload["otherData"]["trace_id"] == "tid"

    def test_one_sided_trace_has_no_flows(self):
        server = [wire_span("serve.predict", "serve", 5.0, 0.1)]
        payload = stitch_trace(trace_id="t", client_spans=[],
                               server_spans=server,
                               client_pid=1, server_pid=2)
        assert not [e for e in payload["traceEvents"]
                    if e["ph"] in ("s", "f")]
        validate(payload, load_schema("chrome_trace.schema.json"))

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="no spans"):
            stitch_trace(trace_id="t", client_spans=[], server_spans=[],
                         client_pid=1, server_pid=2)

    def test_tags_and_exact_starts_ride_in_args(self):
        server = [wire_span("serve.batch.queued", "serve", 50.0, 0.002,
                            leader_trace_id="other")]
        payload = stitch_trace(trace_id="t", client_spans=[],
                               server_spans=server,
                               client_pid=1, server_pid=2)
        span = [e for e in payload["traceEvents"] if e["ph"] == "X"][0]
        assert span["args"]["start_unix"] == 50.0
        assert span["args"]["leader_trace_id"] == "other"
        assert span["args"]["trace_id"] == "t"
