"""Tests for the prefill/decode phase graphs and the training goldens.

The refactor's load-bearing claims:

* **training is bit-identical** — graphs, fingerprints, iteration
  times, and utilizations match byte-for-byte goldens captured before
  the workload layer landed, at every granularity;
* a **prefill graph is exactly the forward-only subgraph** of the
  matching training graph (same labels, devices, streams, durations —
  only the compute ``kind`` differs);
* a **decode graph** is a single-token forward step whose latency is
  monotone in KV-cache depth and batch size;
* workload-tagged fingerprints never collide across workloads or
  phases, so the structure cache can never serve a prefill structure
  for a training predict (or vice versa);
* decode-phase timelines round-trip exactly through the Chrome-trace
  exporter, with ``prefill``/``decode`` as event categories.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import single_node
from repro.errors import ConfigError
from repro.graph.builder import (Granularity, clear_structure_cache,
                                 structure_fingerprint)
from repro.obs.export import events_from_trace, simulation_trace_events
from repro.sim.estimator import VTrain
from repro.workload import (DECODE, INFERENCE_PHASES, PREFILL,
                            InferenceWorkload, TrainingWorkload)

# ---------------------------------------------------------------------------
# Goldens captured at the pre-workload HEAD (tiny model, B=16 training,
# one A100 node). Keys: plan name -> granularity -> (iteration_time,
# gpu_compute_utilization, graph sha256, task count). Any drift here is
# a behaviour change in the training path, which this PR promises not
# to make.
# ---------------------------------------------------------------------------
GOLDEN_PLANS = {
    "tp2dp2pp2": ParallelismConfig(tensor=2, data=2, pipeline=2,
                                   micro_batch_size=2),
    "tp1dp1pp4": ParallelismConfig(tensor=1, data=1, pipeline=4,
                                   micro_batch_size=4),
    "tp2dp1pp2v2": ParallelismConfig(tensor=2, data=1, pipeline=2,
                                     micro_batch_size=2, virtual_stages=2),
}

GOLDENS = {
    ("tp2dp2pp2", Granularity.KERNEL): (
        0.0019234877649131857, 0.15934950892867497,
        "433381226aaa65da1122e48c66aedc621e183771bbeb194cae25f28a4752b149",
        722),
    ("tp2dp2pp2", Granularity.OPERATOR): (
        0.0019234877649131846, 0.15934950892867508,
        "5c1da55cde6bce4e8e8ac7857df41be15d04be2b75720de8bf1710b1b9d395d1",
        162),
    ("tp2dp2pp2", Granularity.STAGE): (
        0.0019234877649131868, 0.1593495089286749,
        "640fd2771b4b4db8a145f0e2ae76a3115975556cc3fb78933e5702171b0150c0",
        32),
    ("tp1dp1pp4", Granularity.KERNEL): (
        0.0035623909944771178, 0.17207927554522653,
        "84a34f16d79dfcf313b1bfcb01caf96426b95ec29c0796db512b8bf2839fb6fe",
        668),
    ("tp1dp1pp4", Granularity.OPERATOR): (
        0.0035623909944771056, 0.17207927554522712,
        "f0409a85e663454b7cd6883e0703de52bf2938fa089ce1f17bff1f2978bbfbf2",
        108),
    ("tp1dp1pp4", Granularity.STAGE): (
        0.0035623909944771078, 0.172079275545227,
        "fda196c4d49e5ebd62ae9b0c61190b229947e29c66015ec0e2cf830e777b7810",
        60),
    ("tp2dp1pp2v2", Granularity.KERNEL): (
        0.0031419682269907016, 0.1951049842810125,
        "c55c07ab64ffb947b8d51b3ab74d6cbe26bd46b9b9295780cc46cd775fecf80b",
        1466),
    ("tp2dp1pp2v2", Granularity.OPERATOR): (
        0.003141968226990694, 0.195104984281013,
        "7e90a450b1444188c20807182da6db1001c13433ffab7f19a2d6fe80a2ef7802",
        346),
    ("tp2dp1pp2v2", Granularity.STAGE): (
        0.0031419682269906916, 0.1951049842810131,
        "e91ccd80f6c761a6a9662cafd855c7c90bfafadfb3d75e609cecdd53603cfd81",
        114),
}


def graph_digest(graph) -> str:
    """Canonical hash of everything structural + timed in a graph."""
    rows = [(node.task_id, node.device, node.stream, node.kind, node.label,
             repr(node.duration), tuple(node.children))
            for node in graph.nodes]
    return hashlib.sha256(
        json.dumps(rows, sort_keys=True).encode()).hexdigest()


@pytest.fixture(autouse=True)
def clean_structure_cache():
    """Workload/phase keying is itself under test here; don't let a
    structure cached by another test module mask a collision."""
    clear_structure_cache()
    yield
    clear_structure_cache()


@pytest.fixture
def workload() -> InferenceWorkload:
    return InferenceWorkload(batch_size=8, prompt_len=128, gen_len=64)


@pytest.fixture
def plan() -> ParallelismConfig:
    return ParallelismConfig(tensor=2, data=2, pipeline=2,
                             micro_batch_size=2)


def make_vtrain(granularity: Granularity = Granularity.OPERATOR) -> VTrain:
    return VTrain(single_node(), granularity=granularity,
                  check_memory_feasibility=False)


# ---------------------------------------------------------------------------
# Training stays bit-identical
# ---------------------------------------------------------------------------
class TestTrainingGoldens:
    @pytest.mark.parametrize("plan_name,granularity",
                             list(GOLDENS), ids=lambda v: str(v))
    def test_training_graph_and_prediction_match_golden(
            self, tiny_model, training, plan_name, granularity):
        expect_time, expect_util, expect_digest, expect_tasks = (
            GOLDENS[(plan_name, granularity)])
        vtrain = make_vtrain(granularity)
        plan = GOLDEN_PLANS[plan_name]
        graph = vtrain.build_graph(tiny_model, plan, training)
        assert len(graph.nodes) == expect_tasks
        assert graph_digest(graph) == expect_digest
        estimate = vtrain.predict(tiny_model, plan, training)
        assert estimate.iteration_time == expect_time
        assert estimate.gpu_compute_utilization == expect_util

    def test_training_workload_dispatch_is_bit_identical(
            self, tiny_model, training, plan):
        """``predict(workload=TrainingWorkload(t))`` is the classic
        path, not a parallel implementation."""
        vtrain = make_vtrain()
        direct = vtrain.predict(tiny_model, plan, training)
        via_workload = vtrain.predict(
            tiny_model, plan, workload=TrainingWorkload(training))
        assert via_workload.iteration_time == direct.iteration_time
        assert (via_workload.gpu_compute_utilization
                == direct.gpu_compute_utilization)
        assert via_workload.memory_per_gpu == direct.memory_per_gpu

    def test_predict_without_training_or_workload_rejected(
            self, tiny_model, plan):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            make_vtrain().predict(tiny_model, plan)

    def test_training_fingerprint_carries_no_workload_tag(
            self, tiny_model, training, plan):
        fingerprint = structure_fingerprint(tiny_model, plan, training,
                                            Granularity.OPERATOR)
        assert "wl=" not in fingerprint and "ph=" not in fingerprint


# ---------------------------------------------------------------------------
# Prefill == training forward subgraph
# ---------------------------------------------------------------------------
def task_rows(structure, labels=None) -> Counter:
    """Multiset of (label, device, stream, duration) for a structure,
    optionally restricted to a label set. ``kind`` deliberately
    excluded: it is the one field allowed to differ."""
    rows: Counter = Counter()
    for position in range(structure.num_tasks):
        if labels is not None and structure.label[position] not in labels:
            continue
        rows[(structure.label[position],
              int(structure.device_ids[position]),
              structure.stream[position],
              repr(structure.duration_view[position]))] += 1
    return rows


class TestPrefillEquivalence:
    @pytest.mark.parametrize("granularity", list(Granularity))
    def test_prefill_is_the_forward_subgraph_of_training(
            self, tiny_model, training, plan, workload, granularity):
        """Same labels, devices, streams, and durations as the training
        graph's forward tasks — at every granularity. (The workload's
        proxy batch 8*d=16 matches the training fixture and prompt_len
        matches seq_length, so the graphs are directly comparable.)"""
        vtrain = make_vtrain(granularity)
        prefill = vtrain.prepare(tiny_model, plan, None,
                                 workload=workload,
                                 phase=PREFILL).structure
        train = vtrain.prepare(tiny_model, plan, training).structure
        prefill_labels = set(prefill.label)
        assert (task_rows(prefill)
                == task_rows(train, labels=prefill_labels))
        assert prefill.num_tasks < train.num_tasks

    def test_prefill_compute_kind_is_the_phase_tag(
            self, tiny_model, plan, workload):
        structure = make_vtrain().prepare(tiny_model, plan, None,
                                          workload=workload,
                                          phase=PREFILL).structure
        kinds = set(structure.kinds)
        assert PREFILL in kinds
        assert "compute" not in kinds

    @pytest.mark.parametrize("phase", INFERENCE_PHASES)
    def test_no_backward_optimizer_or_gradient_tasks(
            self, tiny_model, plan, workload, phase):
        structure = make_vtrain().prepare(tiny_model, plan, None,
                                          workload=workload,
                                          phase=phase).structure
        assert not set(structure.kinds) & {"compute", "dp_allreduce",
                                           "weight_update"}
        labels = " ".join(structure.label)
        assert "bucket" not in labels

    def test_inference_rejects_virtual_stages(self, tiny_model, workload):
        interleaved = ParallelismConfig(tensor=1, data=1, pipeline=2,
                                        micro_batch_size=2,
                                        virtual_stages=2)
        with pytest.raises(ConfigError):
            make_vtrain().prepare(tiny_model, interleaved, None,
                                  workload=workload, phase=PREFILL)


# ---------------------------------------------------------------------------
# Decode graph shape and latency model
# ---------------------------------------------------------------------------
class TestDecodeGraph:
    def test_decode_kinds(self, tiny_model, plan, workload):
        structure = make_vtrain().prepare(tiny_model, plan, None,
                                          workload=workload,
                                          phase=DECODE).structure
        assert DECODE in set(structure.kinds)
        assert "compute" not in set(structure.kinds)

    def test_decode_is_cheaper_than_prefill(self, tiny_model, plan,
                                            workload):
        """One generated token costs less than ingesting the prompt."""
        prediction = make_vtrain().predict_inference(tiny_model, plan,
                                                     workload)
        assert 0 < prediction.decode_step_time < prediction.prefill_time
        assert prediction.time_to_first_token == prediction.prefill_time
        assert prediction.time_per_output_token == (
            prediction.decode_step_time)

    def test_decode_latency_monotone_in_kv_depth(self, tiny_model, plan):
        """Deeper KV caches mean larger attention reads: TPOT must be
        non-decreasing in prompt length, all else equal."""
        vtrain = make_vtrain()
        times = [vtrain.predict_inference(
            tiny_model, plan,
            InferenceWorkload(batch_size=8, prompt_len=prompt,
                              gen_len=64)).decode_step_time
            for prompt in (32, 128, 512, 2048)]
        assert times == sorted(times)
        assert times[-1] > times[0]

    def test_decode_latency_monotone_in_batch_size(self, tiny_model):
        vtrain = make_vtrain()
        times = []
        for batch in (2, 8, 32):
            plan = ParallelismConfig(tensor=2, data=1, pipeline=2,
                                     micro_batch_size=batch)
            times.append(vtrain.predict_inference(
                tiny_model, plan,
                InferenceWorkload(batch_size=batch, prompt_len=128,
                                  gen_len=64)).decode_step_time)
        assert times == sorted(times)
        assert times[-1] > times[0]

    def test_continuous_batching_shrinks_decode_latency(
            self, tiny_model, plan):
        """Steady-state (mean-depth) decode is cheaper than a static
        batch gated by its deepest step."""
        vtrain = make_vtrain()
        static = vtrain.predict_inference(
            tiny_model, plan, InferenceWorkload(
                batch_size=8, prompt_len=128, gen_len=512))
        continuous = vtrain.predict_inference(
            tiny_model, plan, InferenceWorkload(
                batch_size=8, prompt_len=128, gen_len=512,
                continuous_batching=True))
        assert continuous.decode_step_time < static.decode_step_time
        # Prefill ignores generation depth entirely.
        assert continuous.prefill_time == static.prefill_time

    @given(replicas=st.integers(1, 8))
    def test_replicas_scale_throughput_not_latency(self, replicas):
        """The vLLM trade-off, half one: replicas multiply tokens/s and
        leave per-token latency untouched."""
        from repro.config.model import ModelConfig
        model = ModelConfig(hidden_size=512, num_layers=4, seq_length=128,
                            num_heads=8, vocab_size=32_000, name="tiny")
        workload = InferenceWorkload(batch_size=8, prompt_len=128,
                                     gen_len=64)
        vtrain = VTrain(single_node(), check_memory_feasibility=False)
        plan = ParallelismConfig(tensor=1, data=replicas, pipeline=1,
                                 micro_batch_size=8)
        base_plan = ParallelismConfig(tensor=1, data=1, pipeline=1,
                                      micro_batch_size=8)
        scaled = vtrain.predict_inference(model, plan, workload)
        base = vtrain.predict_inference(model, base_plan, workload)
        assert scaled.decode_step_time == base.decode_step_time
        assert scaled.tokens_per_second == pytest.approx(
            replicas * base.tokens_per_second)


# ---------------------------------------------------------------------------
# Fingerprints: workloads and phases never collide
# ---------------------------------------------------------------------------
class TestWorkloadFingerprints:
    def test_phases_and_training_all_distinct(self, tiny_model, training,
                                              plan, workload):
        fingerprints = {
            "training": structure_fingerprint(
                tiny_model, plan, training, Granularity.OPERATOR),
            PREFILL: structure_fingerprint(
                tiny_model, plan, workload.training_proxy(plan.data),
                Granularity.OPERATOR, workload=workload, phase=PREFILL),
            DECODE: structure_fingerprint(
                tiny_model, plan, workload.training_proxy(plan.data),
                Granularity.OPERATOR, workload=workload, phase=DECODE),
        }
        assert len(set(fingerprints.values())) == 3
        assert f"ph={PREFILL}" in fingerprints[PREFILL]
        assert f"ph={DECODE}" in fingerprints[DECODE]

    def test_decode_fingerprint_carries_kv_depth(self, tiny_model, plan):
        shallow = InferenceWorkload(batch_size=8, prompt_len=128,
                                    gen_len=64)
        deep = InferenceWorkload(batch_size=8, prompt_len=512, gen_len=64)
        proxy = shallow.training_proxy(plan.data)
        fp_shallow = structure_fingerprint(
            tiny_model, plan, proxy, Granularity.OPERATOR,
            workload=shallow, phase=DECODE)
        fp_deep = structure_fingerprint(
            tiny_model, plan, proxy, Granularity.OPERATOR,
            workload=deep, phase=DECODE)
        assert fp_shallow != fp_deep

    def test_structure_cache_never_crosses_workloads(
            self, tiny_model, training, plan, workload):
        """A warm training structure must not be served for an
        inference predict of the same plan, nor vice versa."""
        vtrain = make_vtrain()
        train_estimate = vtrain.predict(tiny_model, plan, training)
        inference = vtrain.predict_inference(tiny_model, plan, workload)
        train_again = vtrain.predict(tiny_model, plan, training)
        assert train_again.iteration_time == train_estimate.iteration_time
        assert inference.decode_step_time != train_estimate.iteration_time


# ---------------------------------------------------------------------------
# Decode timelines round-trip through the Chrome-trace exporter
# ---------------------------------------------------------------------------
class TestPhaseTraceExport:
    def test_decode_round_trip_is_exact(self, tiny_model, plan, workload):
        prediction = make_vtrain().predict_inference(
            tiny_model, plan, workload, record_timeline=True)
        for simulation, phase in ((prediction.prefill_simulation, PREFILL),
                                  (prediction.decode_simulation, DECODE)):
            trace = simulation_trace_events(simulation)
            categories = {event["cat"] for event in trace
                          if event["ph"] == "X"}
            assert phase in categories
            assert events_from_trace(trace) == list(simulation.events)
