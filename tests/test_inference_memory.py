"""Tests for the KV-cache memory model behind serving feasibility.

Inference feasibility swaps the training footprint's gradient and
optimizer terms for a KV cache sized by the paper formula

    ``kv = 2 * (L/p) * (prompt + gen) * batch * (h/t) * FP16_BYTES``

and the suite pins that formula analytically: the feasibility verdict
must flip at exactly the generation length where the closed-form
footprint crosses the usable-HBM budget.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig
from repro.config.system import single_node
from repro.errors import InfeasibleConfigError
from repro.memory.footprint import (FP16_BYTES, USABLE_MEMORY_FRACTION,
                                    check_inference_memory,
                                    fits_inference_memory,
                                    inference_memory_footprint,
                                    memory_footprint)
from repro.sim.estimator import VTrain
from repro.workload import InferenceWorkload


@pytest.fixture
def plan() -> ParallelismConfig:
    return ParallelismConfig(tensor=2, data=2, pipeline=2,
                             micro_batch_size=2)


@pytest.fixture
def workload() -> InferenceWorkload:
    return InferenceWorkload(batch_size=8, prompt_len=128, gen_len=64)


def kv_bytes(model: ModelConfig, plan: ParallelismConfig,
             workload: InferenceWorkload) -> float:
    """The paper formula, written independently of the implementation."""
    layers_per_stage = model.num_layers // plan.pipeline
    return (2.0 * layers_per_stage * workload.max_kv_length
            * workload.batch_size * (model.hidden_size / plan.tensor)
            * FP16_BYTES)


class TestInferenceFootprint:
    def test_kv_term_matches_the_paper_formula(self, tiny_model, plan,
                                               workload):
        footprint = inference_memory_footprint(tiny_model, plan, workload)
        assert footprint.kv_cache == kv_bytes(tiny_model, plan, workload)

    def test_no_gradients_or_optimizer_states(self, tiny_model, plan,
                                              workload):
        footprint = inference_memory_footprint(tiny_model, plan, workload)
        assert footprint.gradients == 0.0
        assert footprint.optimizer_states == 0.0
        assert footprint.weights > 0.0

    def test_total_includes_the_kv_cache(self, tiny_model, plan, workload):
        footprint = inference_memory_footprint(tiny_model, plan, workload)
        assert footprint.total == (footprint.weights
                                   + footprint.activations
                                   + footprint.kv_cache)

    def test_training_footprint_keeps_kv_at_zero(self, tiny_model, plan,
                                                 training):
        """Back-compat: the training path never grows a KV term."""
        footprint = memory_footprint(tiny_model, plan, training)
        assert footprint.kv_cache == 0.0

    def test_continuous_batching_does_not_shrink_the_cache(
            self, tiny_model, plan):
        """Continuous batching changes the decode *latency* depth, not
        the provisioning bound — memory is sized for full depth."""
        static = InferenceWorkload(batch_size=8, prompt_len=128,
                                   gen_len=512)
        continuous = InferenceWorkload(batch_size=8, prompt_len=128,
                                       gen_len=512,
                                       continuous_batching=True)
        assert (inference_memory_footprint(tiny_model, plan,
                                           continuous).kv_cache
                == inference_memory_footprint(tiny_model, plan,
                                              static).kv_cache)

    @given(tensor=st.sampled_from([1, 2, 4]),
           pipeline=st.sampled_from([1, 2, 4]))
    def test_kv_cache_shards_across_tp_and_pp(self, tensor, pipeline):
        """TP shards heads (h/t), PP shards layers (L/p): doubling
        either degree halves the per-GPU cache."""
        model = ModelConfig(hidden_size=512, num_layers=4, seq_length=128,
                            num_heads=8, vocab_size=32_000, name="tiny")
        workload = InferenceWorkload(batch_size=8, prompt_len=128,
                                     gen_len=64)
        plan = ParallelismConfig(tensor=tensor, data=1, pipeline=pipeline,
                                 micro_batch_size=8)
        base = ParallelismConfig(tensor=1, data=1, pipeline=1,
                                 micro_batch_size=8)
        sharded = inference_memory_footprint(model, plan, workload)
        unsharded = inference_memory_footprint(model, base, workload)
        assert sharded.kv_cache == unsharded.kv_cache / (tensor * pipeline)


class TestFeasibilityBound:
    def test_feasibility_flips_at_the_analytic_kv_bound(self, tiny_model):
        """Solve the closed form for the largest generation length that
        fits, then check the verdict flips at exactly that point."""
        plan = ParallelismConfig(tensor=1, data=1, pipeline=1,
                                 micro_batch_size=8)
        system = single_node()
        budget = system.gpu.memory_bytes * USABLE_MEMORY_FRACTION
        prompt_len, batch = 128, 8
        probe = InferenceWorkload(batch_size=batch, prompt_len=prompt_len,
                                  gen_len=1)
        footprint = inference_memory_footprint(tiny_model, plan, probe)
        fixed = footprint.weights + footprint.activations
        per_token = (2.0 * tiny_model.num_layers * batch
                     * tiny_model.hidden_size * FP16_BYTES)
        max_gen = int((budget - fixed) / per_token) - prompt_len
        assert max_gen > 0
        at_bound = InferenceWorkload(batch_size=batch,
                                     prompt_len=prompt_len,
                                     gen_len=max_gen)
        past_bound = InferenceWorkload(batch_size=batch,
                                       prompt_len=prompt_len,
                                       gen_len=max_gen + 1)
        assert fits_inference_memory(tiny_model, plan, at_bound, system)
        assert not fits_inference_memory(tiny_model, plan, past_bound,
                                         system)

    def test_check_raises_with_a_diagnosable_message(self, tiny_model):
        plan = ParallelismConfig(tensor=1, data=1, pipeline=1,
                                 micro_batch_size=8)
        oversized = InferenceWorkload(batch_size=8, prompt_len=128,
                                      gen_len=10_000_000)
        with pytest.raises(InfeasibleConfigError, match="serving plan"):
            check_inference_memory(tiny_model, plan, oversized,
                                   single_node())

    def test_check_returns_footprint_when_feasible(self, tiny_model, plan,
                                                   workload):
        footprint = check_inference_memory(tiny_model, plan, workload,
                                           single_node())
        assert footprint.kv_cache == kv_bytes(tiny_model, plan, workload)

    def test_predict_inference_enforces_the_bound(self, tiny_model):
        """The estimator front door honours the same verdict."""
        plan = ParallelismConfig(tensor=1, data=1, pipeline=1,
                                 micro_batch_size=8)
        vtrain = VTrain(single_node())
        oversized = InferenceWorkload(batch_size=8, prompt_len=128,
                                      gen_len=10_000_000)
        with pytest.raises(InfeasibleConfigError):
            vtrain.predict_inference(tiny_model, plan, oversized)
        fits = InferenceWorkload(batch_size=8, prompt_len=128, gen_len=64)
        prediction = vtrain.predict_inference(tiny_model, plan, fits)
        assert prediction.memory_per_gpu == inference_memory_footprint(
            tiny_model, plan, fits).total
