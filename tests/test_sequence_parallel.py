"""Tests for the sequence-parallelism extension (Korthikanti et al.)."""

import pytest

from repro.config.description import InputDescription
from repro.config.model import ModelConfig
from repro.config.parallelism import (ParallelismConfig, RecomputeMode,
                                      TrainingConfig)
from repro.config.system import single_node
from repro.errors import ConfigError
from repro.memory.footprint import activation_bytes_per_layer, memory_footprint


@pytest.fixture
def model():
    return ModelConfig(hidden_size=2048, num_layers=8, seq_length=2048,
                       num_heads=16, name="sp-model")


@pytest.fixture
def batch():
    return TrainingConfig(global_batch_size=8)


def plan(sp: bool, t: int = 8, recompute=RecomputeMode.SELECTIVE):
    return ParallelismConfig(tensor=t, data=1, pipeline=1,
                             sequence_parallel=sp, recompute=recompute)


class TestConfig:
    def test_requires_tensor_parallelism(self):
        with pytest.raises(ConfigError, match="sequence_parallel"):
            ParallelismConfig(tensor=1, data=8, pipeline=1,
                              sequence_parallel=True)

    def test_default_off(self):
        assert not ParallelismConfig(tensor=2, data=1,
                                     pipeline=1).sequence_parallel

    def test_description_round_trip(self, model, batch):
        desc = InputDescription(model=model, system=single_node(),
                                plan=plan(True), training=batch)
        rebuilt = InputDescription.from_dict(desc.to_dict())
        assert rebuilt.plan.sequence_parallel


class TestActivationMemory:
    def test_sp_divides_all_terms_by_t(self, model):
        """Korthikanti: selective + SP stores s*b*h*34/t per layer."""
        with_sp = activation_bytes_per_layer(model, plan(True))
        expected = (model.seq_length * model.hidden_size * 34.0 / 8)
        assert with_sp == pytest.approx(expected)

    def test_sp_saves_memory_selective(self, model):
        assert activation_bytes_per_layer(model, plan(True)) < \
            activation_bytes_per_layer(model, plan(False))

    def test_sp_saves_memory_none_recompute(self, model):
        no_rc = RecomputeMode.NONE
        assert activation_bytes_per_layer(model, plan(True, recompute=no_rc)) \
            < activation_bytes_per_layer(model, plan(False, recompute=no_rc))

    def test_sp_shards_stored_input_under_full_recompute(self, model):
        full = RecomputeMode.FULL
        with_sp = activation_bytes_per_layer(model, plan(True, recompute=full))
        without = activation_bytes_per_layer(model, plan(False,
                                                         recompute=full))
        assert with_sp == pytest.approx(without / 8)

    def test_saving_grows_with_t(self, model):
        ratios = []
        for t in (2, 4, 8):
            sp = activation_bytes_per_layer(model, plan(True, t=t))
            base = activation_bytes_per_layer(model, plan(False, t=t))
            ratios.append(sp / base)
        assert ratios == sorted(ratios, reverse=True)  # bigger t, bigger win

    def test_model_states_unchanged(self, model, batch):
        with_sp = memory_footprint(model, plan(True), batch)
        without = memory_footprint(model, plan(False), batch)
        assert with_sp.model_states == without.model_states
        assert with_sp.activations < without.activations


class TestEndToEnd:
    def test_sp_unlocks_infeasible_config(self, batch):
        """The Korthikanti selling point: a config whose activations
        overflow without SP becomes trainable with it."""
        from repro.config.system import single_node
        from repro.memory.footprint import fits_in_memory
        big = ModelConfig(hidden_size=8192, num_layers=8, seq_length=8192,
                          num_heads=64, name="long-context")
        training = TrainingConfig(global_batch_size=32)
        base = ParallelismConfig(tensor=8, data=1, pipeline=1,
                                 micro_batch_size=16,
                                 recompute=RecomputeMode.SELECTIVE)
        with_sp = base.replaced(sequence_parallel=True)
        system = single_node()
        assert not fits_in_memory(big, base, training, system)
        assert fits_in_memory(big, with_sp, training, system)

    def test_simulation_runs_with_sp(self, model, batch):
        """SP plans flow through the whole prediction pipeline."""
        from repro.sim.estimator import VTrain
        vtrain = VTrain(single_node())
        prediction = vtrain.predict(model, plan(True), batch)
        assert prediction.iteration_time > 0
