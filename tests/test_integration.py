"""Integration tests: the paper's headline numbers, end to end.

Each test reproduces one quantitative claim from the paper using the
public API only, with tolerances wide enough to be robust but tight
enough that a regression in any subsystem (kernel model, graph builder,
NCCL model, memory model, cost model) trips them.
"""

import pytest

from repro import (Granularity, ParallelismConfig, TrainingConfig, VTrain,
                   multi_node, single_node)
from repro.config.presets import (MT_NLG_530B, MT_NLG_BASELINE_PLANS,
                                  MT_NLG_TRAINING, MT_NLG_VTRAIN_PLANS,
                                  TABLE_II_ROWS)
from repro.testbed.emulator import TestbedEmulator

#: Table I, left half (MT-NLG's published heuristic plans).
TABLE_I_BASELINE = {
    (8, 8, 35): dict(iteration=42.59, days=33.52, utilization=42.67,
                     dollars_m=9.01),
    (8, 10, 35): dict(iteration=34.92, days=27.49, utilization=41.63,
                      dollars_m=9.24),
    (8, 12, 35): dict(iteration=29.81, days=23.46, utilization=40.64,
                      dollars_m=9.46),
}

#: Table I, right half (vTrain's uncovered cost-effective plans).
TABLE_I_FINDINGS = {
    (8, 12, 21): dict(iteration=45.29, days=35.64, utilization=44.58,
                      dollars_m=8.62),
    (8, 16, 21): dict(iteration=34.97, days=27.53, utilization=43.30,
                      dollars_m=8.88),
    (8, 20, 21): dict(iteration=28.78, days=22.65, utilization=42.09,
                      dollars_m=9.13),
}


def estimate(plan, granularity=Granularity.STAGE):
    system = multi_node(plan.total_gpus // 8)
    vtrain = VTrain(system, granularity=granularity)
    return vtrain.estimate_training(MT_NLG_530B, plan, MT_NLG_TRAINING)


@pytest.mark.slow
class TestTable1:
    @pytest.mark.parametrize("plan", MT_NLG_BASELINE_PLANS,
                             ids=lambda p: str(p.way))
    def test_baseline_rows(self, plan):
        expected = TABLE_I_BASELINE[plan.way]
        result = estimate(plan)
        assert result.iteration_time == pytest.approx(expected["iteration"],
                                                      rel=0.10)
        assert result.total_days == pytest.approx(expected["days"], rel=0.10)
        assert 100 * result.gpu_compute_utilization == pytest.approx(
            expected["utilization"], rel=0.10)
        assert result.dollars_total / 1e6 == pytest.approx(
            expected["dollars_m"], rel=0.10)

    @pytest.mark.parametrize("plan", MT_NLG_VTRAIN_PLANS,
                             ids=lambda p: str(p.way))
    def test_findings_rows(self, plan):
        expected = TABLE_I_FINDINGS[plan.way]
        result = estimate(plan)
        assert result.iteration_time == pytest.approx(expected["iteration"],
                                                      rel=0.10)
        assert result.dollars_total / 1e6 == pytest.approx(
            expected["dollars_m"], rel=0.10)

    def test_findings_cheaper_than_baselines(self):
        """The paper's headline: each uncovered plan costs less in total
        than its corresponding baseline."""
        for base_plan, our_plan in zip(MT_NLG_BASELINE_PLANS,
                                       MT_NLG_VTRAIN_PLANS):
            base = estimate(base_plan)
            ours = estimate(our_plan)
            assert ours.dollars_total < base.dollars_total
            assert ours.gpu_compute_utilization > \
                base.gpu_compute_utilization

    def test_stage_and_operator_granularity_agree(self):
        plan = MT_NLG_BASELINE_PLANS[0]
        stage = estimate(plan, Granularity.STAGE)
        operator = estimate(plan, Granularity.OPERATOR)
        assert stage.iteration_time == pytest.approx(
            operator.iteration_time, rel=0.02)


@pytest.mark.slow
class TestTable2:
    @pytest.mark.parametrize("row", TABLE_II_ROWS,
                             ids=lambda r: f"{r.model.name}@{r.num_gpus}")
    def test_vtrain_plan_beats_megatron_plan(self, row):
        """Table II: the vTrain-uncovered plan yields lower predicted AND
        lower measured iteration time at every scale."""
        system = multi_node(row.num_gpus // 8)
        training = TrainingConfig(global_batch_size=row.global_batch_size)
        vtrain = VTrain(system, granularity=Granularity.OPERATOR)
        testbed = TestbedEmulator(system)

        predicted_megatron = vtrain.predict(row.model, row.megatron_plan,
                                            training).iteration_time
        predicted_ours = vtrain.predict(row.model, row.vtrain_plan,
                                        training).iteration_time
        measured_megatron = testbed.measure_time(row.model, row.megatron_plan,
                                                 training)
        measured_ours = testbed.measure_time(row.model, row.vtrain_plan,
                                             training)
        assert predicted_ours < predicted_megatron
        assert measured_ours < measured_megatron

    def test_prediction_error_within_paper_band(self):
        """Predicted vs measured for the Table II configurations stays
        inside ~25% (the paper's worst multi-node points)."""
        for row in TABLE_II_ROWS:
            system = multi_node(row.num_gpus // 8)
            training = TrainingConfig(global_batch_size=row.global_batch_size)
            vtrain = VTrain(system, granularity=Granularity.OPERATOR)
            testbed = TestbedEmulator(system)
            predicted = vtrain.predict(row.model, row.megatron_plan,
                                       training).iteration_time
            measured = testbed.measure_time(row.model, row.megatron_plan,
                                            training)
            assert abs(predicted - measured) / measured < 0.25


@pytest.mark.slow
class TestFigure9:
    def test_single_node_accuracy_band(self):
        """Figure 9(a): MAPE ~8.4%, R^2 ~0.99 on the single-node campaign
        (subsampled 4x for test runtime)."""
        from repro.validation import run_campaign, single_node_points
        result = run_campaign(single_node_points()[::4])
        summary = result.accuracy
        assert 4.0 < summary.mape < 12.0
        assert summary.r_squared > 0.97

    def test_multi_node_accuracy_band(self):
        """Figure 9(b): MAPE ~15%, R^2 ~0.99 on the multi-node campaign
        (subsampled for test runtime)."""
        from repro.validation import multi_node_points, run_campaign
        result = run_campaign(multi_node_points()[::3])
        summary = result.accuracy
        assert 8.0 < summary.mape < 22.0
        assert summary.r_squared > 0.93

    def test_multi_node_error_exceeds_single_node(self):
        """The paper's ordering: inter-node modelling is the weaker part."""
        from repro.validation import (multi_node_points, run_campaign,
                                      single_node_points)
        single = run_campaign(single_node_points()[::16]).accuracy
        multi = run_campaign(multi_node_points()[::8]).accuracy
        assert multi.mape > single.mape


class TestSimulationSpeed:
    def test_stage_granularity_fast_enough_for_dse(self):
        """Section III-F: a single simulation completes in seconds; the
        stage-granularity fast path must stay well under one second for
        an MT-NLG-sized configuration."""
        import time
        plan = MT_NLG_BASELINE_PLANS[0]
        system = multi_node(plan.total_gpus // 8)
        vtrain = VTrain(system, granularity=Granularity.STAGE)
        vtrain.predict(MT_NLG_530B, plan, MT_NLG_TRAINING)  # warm profiles
        start = time.perf_counter()
        vtrain.predict(MT_NLG_530B, plan, MT_NLG_TRAINING)
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0

    def test_operator_count_independent_profiling(self):
        """Section III-C: profiling cost is O(1) in L and N_MB."""
        system = single_node()
        vtrain = VTrain(system)
        from repro.config.model import ModelConfig
        shallow = ModelConfig(hidden_size=512, num_layers=2, seq_length=128,
                              num_heads=8)
        deep = ModelConfig(hidden_size=512, num_layers=8, seq_length=128,
                           num_heads=8)
        plan = ParallelismConfig(tensor=2, data=4, pipeline=1)
        training = TrainingConfig(global_batch_size=16)
        vtrain.predict(shallow, plan, training)
        after_shallow = vtrain.profiling_stats["operators_profiled"]
        vtrain.predict(deep, plan, training)
        after_deep = vtrain.profiling_stats["operators_profiled"]
        # The deep model re-uses every decoder-layer signature; only the
        # weight-update signature (different param count) is new.
        assert after_deep - after_shallow <= 2
