"""Unit tests for the training-system configuration."""

import pytest

from repro.config.system import GBPS, SystemConfig, multi_node, single_node
from repro.errors import ConfigError
from repro.hardware.gpu import A100_40GB, A100_80GB


class TestSystemConfig:
    def test_defaults_match_paper_cluster(self):
        system = multi_node(64)
        assert system.num_gpus == 512
        assert system.gpus_per_node == 8
        assert system.gpu is A100_80GB
        assert system.internode_bandwidth == pytest.approx(800 * GBPS)

    def test_num_nodes(self):
        assert multi_node(4).num_nodes == 4
        assert single_node().num_nodes == 1

    def test_effective_bandwidth_scales_with_alpha(self):
        system = SystemConfig(num_gpus=16, bandwidth_effectiveness=0.5)
        assert system.effective_internode_bandwidth == pytest.approx(
            0.5 * system.internode_bandwidth)

    def test_peak_system_flops(self):
        system = single_node()
        assert system.peak_system_flops() == pytest.approx(8 * 312e12)

    def test_with_gpus_resizes(self):
        system = multi_node(2)
        bigger = system.with_gpus(64)
        assert bigger.num_gpus == 64
        assert bigger.gpu is system.gpu

    def test_rejects_partial_nodes(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_gpus=12, gpus_per_node=8)

    def test_single_gpu_allowed(self):
        assert SystemConfig(num_gpus=4, gpus_per_node=8).num_nodes == 1

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_gpus=8, bandwidth_effectiveness=0.0)
        with pytest.raises(ConfigError):
            SystemConfig(num_gpus=8, bandwidth_effectiveness=1.5)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigError):
            multi_node(0)

    def test_describe_mentions_gpu_and_nodes(self):
        text = multi_node(2, gpu=A100_40GB).describe()
        assert "A100-SXM4-40GB" in text
        assert "2 nodes" in text


class TestNetworkFields:
    def test_defaults_are_flat_four_hca(self):
        system = multi_node(2)
        assert system.nics_per_node == 4
        assert system.network == "flat"
        assert system.nic_bandwidth == pytest.approx(
            system.effective_internode_bandwidth / 4)

    def test_multi_node_threads_network(self):
        assert multi_node(2, network="rail").network_spec.kind == "rail"
        assert multi_node(2, network="fat-tree:4").network_spec \
            .oversubscription == 4.0

    def test_rejects_bad_network(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_gpus=16, network="torus")

    def test_rejects_bad_nics(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_gpus=16, nics_per_node=0)

    def test_to_dict_omits_defaults_for_cache_stability(self):
        """Default systems must serialize exactly as they did before
        these fields existed, so PR-1 prediction caches stay valid."""
        payload = multi_node(2).to_dict()
        assert "network" not in payload
        assert "nics_per_node" not in payload

    def test_to_dict_round_trips_non_defaults(self):
        system = SystemConfig(num_gpus=16, nics_per_node=8,
                              network="fat-tree:2")
        payload = system.to_dict()
        assert payload["nics_per_node"] == 8
        assert payload["network"] == "fat-tree:2"
        assert SystemConfig.from_dict(payload) == system
