"""Unit tests for parallelism/training configs and plan validation."""

import pytest

from repro.config.model import ModelConfig
from repro.config.parallelism import (ParallelismConfig, PipelineSchedule,
                                      RecomputeMode, TrainingConfig,
                                      layers_per_stage, num_micro_batches,
                                      validate_plan)
from repro.errors import ConfigError, InfeasibleConfigError


class TestParallelismConfig:
    def test_total_gpus(self):
        plan = ParallelismConfig(tensor=8, data=12, pipeline=21)
        assert plan.total_gpus == 2016

    def test_way_matches_paper_notation(self):
        plan = ParallelismConfig(tensor=4, data=2, pipeline=3)
        assert plan.way == (4, 2, 3)

    def test_rejects_zero_degrees(self):
        with pytest.raises(ConfigError):
            ParallelismConfig(tensor=0, data=1, pipeline=1)

    def test_rejects_zero_buckets(self):
        with pytest.raises(ConfigError):
            ParallelismConfig(tensor=1, data=1, pipeline=1,
                              num_gradient_buckets=0)

    def test_describe_includes_schedule(self):
        plan = ParallelismConfig(tensor=1, data=1, pipeline=1,
                                 schedule=PipelineSchedule.GPIPE)
        assert "gpipe" in plan.describe()

    def test_replaced(self):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2)
        bigger = plan.replaced(micro_batch_size=4)
        assert bigger.micro_batch_size == 4
        assert bigger.way == plan.way

    def test_defaults_match_megatron_practice(self):
        plan = ParallelismConfig(tensor=1, data=1, pipeline=1)
        assert plan.schedule is PipelineSchedule.ONE_F_ONE_B
        assert plan.gradient_bucketing
        assert plan.recompute is RecomputeMode.SELECTIVE


class TestTrainingConfig:
    def test_tokens_per_iteration(self, tiny_model):
        training = TrainingConfig(global_batch_size=16)
        assert training.tokens_per_iteration(tiny_model) == 16 * 128

    def test_num_iterations_ceils(self, tiny_model):
        training = TrainingConfig(global_batch_size=16, total_tokens=2049 * 16)
        # 16 * 128 = 2048 tokens/iter -> 2049*16 tokens need 17 iterations.
        assert training.num_iterations(tiny_model) == 17

    def test_num_iterations_zero_without_budget(self, tiny_model):
        training = TrainingConfig(global_batch_size=16)
        assert training.num_iterations(tiny_model) == 0

    def test_rejects_zero_batch(self):
        with pytest.raises(ConfigError):
            TrainingConfig(global_batch_size=0)


class TestValidatePlan:
    def _model(self) -> ModelConfig:
        return ModelConfig(hidden_size=256, num_layers=6, seq_length=64,
                           num_heads=8)

    def test_accepts_valid_plan(self):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=3,
                                 micro_batch_size=2)
        validate_plan(self._model(), plan, TrainingConfig(global_batch_size=8),
                      num_gpus=12)

    def test_rejects_gpu_mismatch(self):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=3)
        with pytest.raises(InfeasibleConfigError, match="GPUs"):
            validate_plan(self._model(), plan,
                          TrainingConfig(global_batch_size=8), num_gpus=8)

    def test_rejects_pipeline_not_dividing_layers(self):
        plan = ParallelismConfig(tensor=1, data=1, pipeline=4)
        with pytest.raises(InfeasibleConfigError, match="pipeline"):
            validate_plan(self._model(), plan,
                          TrainingConfig(global_batch_size=8), num_gpus=4)

    def test_rejects_tensor_not_dividing_heads(self):
        plan = ParallelismConfig(tensor=3, data=1, pipeline=1)
        with pytest.raises(InfeasibleConfigError, match="tensor"):
            validate_plan(self._model(), plan,
                          TrainingConfig(global_batch_size=8), num_gpus=3)

    def test_rejects_data_not_dividing_batch(self):
        plan = ParallelismConfig(tensor=1, data=3, pipeline=1)
        with pytest.raises(InfeasibleConfigError, match="data"):
            validate_plan(self._model(), plan,
                          TrainingConfig(global_batch_size=8), num_gpus=3)

    def test_rejects_micro_batch_not_dividing_replica_batch(self):
        plan = ParallelismConfig(tensor=1, data=2, pipeline=1,
                                 micro_batch_size=3)
        with pytest.raises(InfeasibleConfigError, match="micro-batch"):
            validate_plan(self._model(), plan,
                          TrainingConfig(global_batch_size=8), num_gpus=2)


class TestDerivedQuantities:
    def test_num_micro_batches(self):
        plan = ParallelismConfig(tensor=1, data=2, pipeline=1,
                                 micro_batch_size=2)
        training = TrainingConfig(global_batch_size=16)
        assert num_micro_batches(plan, training) == 4

    def test_layers_per_stage(self):
        model = ModelConfig(hidden_size=256, num_layers=12, seq_length=64,
                            num_heads=8)
        plan = ParallelismConfig(tensor=1, data=1, pipeline=3)
        assert layers_per_stage(model, plan) == 4
