"""Smoke tests: every example script runs to completion.

Examples are the first thing a downstream user touches; these tests run
each script's ``main()`` in-process (stdout captured by pytest) so a
refactor that breaks an example fails CI rather than the user. The
slower case studies are marked ``slow``.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def load_example(name: str):
    """Import an example script as a module."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestFastExamples:
    def test_hardware_whatif(self, capsys):
        load_example("hardware_whatif").main()
        out = capsys.readouterr().out
        assert "A100-SXM4-80GB" in out
        assert "H100" in out

    def test_topology_whatif(self, capsys):
        load_example("topology_whatif").main()
        out = capsys.readouterr().out
        assert "rail" in out
        assert "fat-tree:8" in out
        assert "hierarchical" in out or "ring" in out

    def test_serving_whatif(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setattr(sys, "argv",
                            ["serving_whatif.py",
                             str(tmp_path / "gpt3_serving")])
        load_example("serving_whatif").main()
        out = capsys.readouterr().out
        assert "TTFT (ms)" in out
        assert "TPOT (ms)" in out
        assert "$/Mtok" in out
        assert (tmp_path / "gpt3_serving_prefill_trace.json").exists()
        assert (tmp_path / "gpt3_serving_decode_trace.json").exists()

    def test_serve_clients(self, capsys):
        load_example("serve_clients").main()
        out = capsys.readouterr().out
        assert "simulations actually run: 1" in out
        assert "Daemon stats" in out
        assert "coalesced" in out

    @pytest.mark.slow
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "Predicted iteration time" in out
        assert "Total training cost" in out


@pytest.mark.slow
class TestCaseStudyExamples:
    def test_chinchilla_budget(self, capsys):
        load_example("chinchilla_budget").main()
        out = capsys.readouterr().out
        assert "Naive Chinchilla point" in out
        assert "Realistic compute-optimal model" in out

    def test_validation_campaign(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["validation_campaign.py"])
        load_example("validation_campaign").main()
        out = capsys.readouterr().out
        assert "MAPE" in out
        assert "Multi-node campaign" in out

    def test_multi_tenant_cluster(self, capsys):
        load_example("multi_tenant_cluster").main()
        out = capsys.readouterr().out
        assert "ElasticFlow" in out
        assert "deadline ratio" in out

    def test_trace_iteration(self, capsys, monkeypatch, tmp_path):
        from repro import obs
        was_enabled = obs.enabled()
        trace_path = tmp_path / "trace.json"
        monkeypatch.setattr(sys, "argv",
                            ["trace_iteration.py", str(trace_path)])
        try:
            load_example("trace_iteration").main()
        finally:
            if not was_enabled:
                obs.disable()
            obs.reset()
        out = capsys.readouterr().out
        assert "Predicted iteration time" in out
        assert "Events exported" in out
        assert trace_path.exists()
