"""Unit tests for the NCCL communication models (Section III-D, Eq. 1)."""

import pytest

from repro.config.system import multi_node, single_node
from repro.errors import ConfigError
from repro.graph.operators import data_allreduce, pipeline_send_recv
from repro.hardware.interconnect import LinkType, infiniband_ring
from repro.profiling.nccl import MIB, PROFILE_SIZES, NcclModel


@pytest.fixture
def nccl():
    return NcclModel(single_node())


class TestProfileTable:
    def test_covers_1mb_to_1024mb(self, nccl):
        sizes, latencies = nccl.profile_table(8)
        assert sizes[0] == MIB
        assert sizes[-1] == 1024 * MIB
        assert len(sizes) == len(PROFILE_SIZES)
        assert all(b > a for a, b in zip(latencies, latencies[1:]))

    def test_table_is_cached(self, nccl):
        first = nccl.profile_table(4)
        second = nccl.profile_table(4)
        assert first is second

    def test_rejects_trivial_group(self, nccl):
        with pytest.raises(ConfigError):
            nccl.profile_table(1)


class TestInterpolation:
    def test_exact_at_profiled_points(self, nccl):
        sizes, latencies = nccl.profile_table(8)
        for size, expected in zip(sizes, latencies):
            assert nccl.allreduce_time(size, 8, LinkType.INTRA_NODE) == \
                pytest.approx(expected)

    def test_midpoint_between_neighbours(self, nccl):
        sizes, latencies = nccl.profile_table(8)
        mid = (sizes[3] * sizes[4]) ** 0.5  # log-midpoint
        value = nccl.allreduce_time(mid, 8, LinkType.INTRA_NODE)
        assert latencies[3] < value < latencies[4]

    def test_below_range_scales_down(self, nccl):
        tiny = nccl.allreduce_time(MIB / 8, 8, LinkType.INTRA_NODE)
        at_1mb = nccl.allreduce_time(MIB, 8, LinkType.INTRA_NODE)
        assert 0 < tiny < at_1mb

    def test_above_range_extrapolates_linearly(self, nccl):
        at_max = nccl.allreduce_time(1024 * MIB, 8, LinkType.INTRA_NODE)
        doubled = nccl.allreduce_time(2048 * MIB, 8, LinkType.INTRA_NODE)
        assert doubled == pytest.approx(2 * at_max, rel=0.05)


class TestEquation1:
    def test_internode_matches_equation(self):
        system = multi_node(4)
        model = NcclModel(system)
        size = 256 * MIB
        expected = infiniband_ring(system).allreduce_time(size, 4)
        assert model.allreduce_time(size, 4, LinkType.INTER_NODE) == \
            pytest.approx(expected)

    def test_alpha_scales_internode_time(self):
        import dataclasses
        fast = multi_node(4)
        slow = dataclasses.replace(fast, bandwidth_effectiveness=0.5)
        size = 256 * MIB
        t_fast = NcclModel(fast).allreduce_time(size, 4, LinkType.INTER_NODE)
        t_slow = NcclModel(slow).allreduce_time(size, 4, LinkType.INTER_NODE)
        assert t_slow == pytest.approx(2 * t_fast, rel=0.01)

    def test_group_size_factor(self):
        """2(n-1)/n grows with n."""
        model = NcclModel(multi_node(8))
        size = 512 * MIB
        t2 = model.allreduce_time(size, 2, LinkType.INTER_NODE)
        t8 = model.allreduce_time(size, 8, LinkType.INTER_NODE)
        assert t8 > t2


class TestInterference:
    def test_interference_multiplies_intranode(self):
        clean = NcclModel(single_node())
        noisy = NcclModel(single_node(), interference=1.3)
        size = 64 * MIB
        assert noisy.allreduce_time(size, 8, LinkType.INTRA_NODE) == \
            pytest.approx(1.3 * clean.allreduce_time(size, 8,
                                                     LinkType.INTRA_NODE))

    def test_interference_does_not_touch_internode(self):
        system = multi_node(2)
        clean = NcclModel(system)
        noisy = NcclModel(system, interference=1.3)
        size = 64 * MIB
        assert noisy.allreduce_time(size, 2, LinkType.INTER_NODE) == \
            pytest.approx(clean.allreduce_time(size, 2, LinkType.INTER_NODE))

    def test_rejects_speedup_interference(self):
        with pytest.raises(ConfigError):
            NcclModel(single_node(), interference=0.9)


class TestDispatch:
    def test_time_dispatches_all_kinds(self, nccl):
        ar = data_allreduce(8 * MIB, 4, LinkType.INTRA_NODE)
        send = pipeline_send_recv(1, 128, 512, LinkType.INTRA_NODE)
        assert nccl.time(ar) > 0
        assert nccl.time(send) > 0

    def test_trivial_groups_free(self, nccl):
        assert nccl.allreduce_time(MIB, 1, LinkType.INTRA_NODE) == 0.0
        assert nccl.allreduce_time(0, 8, LinkType.INTRA_NODE) == 0.0

    def test_allgather_cheaper_than_allreduce(self, nccl):
        size = 128 * MIB
        ag = nccl.allgather_time(size, 8, LinkType.INTRA_NODE)
        ar = nccl.allreduce_time(size, 8, LinkType.INTRA_NODE)
        assert ag < ar
