"""Property-based tests: serialization round-trips and cluster invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.throughput import ThroughputProfile
from repro.config.description import InputDescription
from repro.config.model import ModelConfig
from repro.config.parallelism import (ParallelismConfig, PipelineSchedule,
                                      RecomputeMode, TrainingConfig)
from repro.config.system import SystemConfig
from repro.hardware.gpu import KNOWN_GPUS

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def descriptions(draw):
    heads = draw(st.sampled_from([4, 8, 16]))
    hidden = heads * 64 * draw(st.integers(min_value=1, max_value=4))
    layers = draw(st.sampled_from([2, 4, 8, 12]))
    model = ModelConfig(hidden_size=hidden, num_layers=layers,
                        seq_length=draw(st.sampled_from([64, 128, 1024])),
                        num_heads=heads,
                        vocab_size=draw(st.sampled_from([8192, 32000,
                                                         51200])),
                        name=draw(st.sampled_from(["", "m", "proto-llm"])))
    tensor = draw(st.sampled_from([t for t in (1, 2, 4)
                                   if heads % t == 0]))
    pipeline = draw(st.sampled_from([p for p in (1, 2, 4)
                                     if layers % p == 0]))
    data = draw(st.sampled_from([1, 2, 4]))
    per_replica = draw(st.sampled_from([2, 4, 8]))
    plan = ParallelismConfig(
        tensor=tensor, data=data, pipeline=pipeline,
        micro_batch_size=draw(st.sampled_from(
            [m for m in (1, 2) if per_replica % m == 0])),
        schedule=draw(st.sampled_from(list(PipelineSchedule))),
        gradient_bucketing=draw(st.booleans()),
        num_gradient_buckets=draw(st.integers(min_value=1, max_value=8)),
        recompute=draw(st.sampled_from(list(RecomputeMode))))
    gpus_needed = plan.total_gpus
    gpus_per_node = 8
    nodes = max(1, -(-gpus_needed // gpus_per_node))
    system = SystemConfig(
        num_gpus=nodes * gpus_per_node, gpus_per_node=gpus_per_node,
        gpu=draw(st.sampled_from(sorted(KNOWN_GPUS.values(),
                                        key=lambda g: g.name))),
        bandwidth_effectiveness=draw(st.sampled_from([0.5, 0.8, 1.0])))
    training = TrainingConfig(
        global_batch_size=data * per_replica,
        total_tokens=draw(st.sampled_from([0, 10 ** 9, 10 ** 12])))
    return InputDescription(model=model, system=system, plan=plan,
                            training=training)


# ---------------------------------------------------------------------------
# Round trips
# ---------------------------------------------------------------------------


@given(descriptions())
def test_description_dict_round_trip(description):
    rebuilt = InputDescription.from_dict(description.to_dict())
    assert rebuilt.model == description.model
    assert rebuilt.plan == description.plan
    assert rebuilt.training == description.training
    assert rebuilt.system.num_gpus == description.system.num_gpus
    assert rebuilt.system.gpu == description.system.gpu
    assert (rebuilt.system.bandwidth_effectiveness
            == description.system.bandwidth_effectiveness)


@given(descriptions())
def test_description_json_round_trip(description):
    rebuilt = InputDescription.from_json(description.to_json())
    assert rebuilt == InputDescription.from_dict(description.to_dict())


@given(descriptions())
def test_json_is_stable(description):
    """Serialising twice yields identical text (no ordering drift)."""
    assert description.to_json() == description.to_json()


# ---------------------------------------------------------------------------
# Throughput-profile invariants
# ---------------------------------------------------------------------------


@st.composite
def profiles(draw):
    counts = draw(st.lists(st.sampled_from([8, 16, 32, 64, 128, 256, 512]),
                           min_size=1, max_size=6, unique=True))
    counts.sort()
    rates = []
    rate = draw(st.floats(min_value=1e-4, max_value=1.0))
    for _ in counts:
        rates.append(rate)
        rate *= draw(st.floats(min_value=1.05, max_value=2.0))
    return ThroughputProfile(model_name="m",
                             table=tuple(zip(counts, rates)))


@given(profiles(), st.integers(min_value=0, max_value=1024))
def test_profile_rate_monotone(profile, gpus):
    """rate() is monotone non-decreasing in the allocation size."""
    assert profile.rate(gpus) <= profile.rate(gpus + 8) + 1e-15


@given(profiles())
def test_profile_next_step_ladder(profile):
    """Walking next_step from the minimum visits every candidate."""
    visited = [profile.min_gpus]
    while True:
        nxt = profile.next_step(visited[-1])
        if nxt is None:
            break
        visited.append(nxt)
    assert tuple(visited) == profile.candidates


@given(profiles())
def test_profile_below_minimum_is_zero(profile):
    assert profile.rate(profile.min_gpus - 1) == 0.0


# ---------------------------------------------------------------------------
# Trace invariants
# ---------------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=50),
       st.integers(min_value=1, max_value=64))
def test_trace_invariants(trace_id, num_jobs):
    from repro.cluster.trace import synthesize_trace
    from repro.config.presets import TABLE_III_MODELS
    reference = {spec.model.name: ThroughputProfile(
        model_name=spec.model.name, table=((8, 0.01), (128, 0.08)))
        for spec in TABLE_III_MODELS}
    jobs = synthesize_trace(trace_id, num_jobs, reference)
    assert len(jobs) == num_jobs
    assert [job.job_id for job in jobs] == list(range(num_jobs))
    arrivals = [job.arrival_time for job in jobs]
    assert arrivals == sorted(arrivals)
    for job in jobs:
        assert job.deadline is None or job.deadline > job.arrival_time
        assert job.num_iterations > 0
        assert job.model_name in reference
