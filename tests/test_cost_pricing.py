"""Unit tests for the pricing model."""

import pytest

from repro.cost.pricing import (DEFAULT_PRICING, P4D_DOLLARS_PER_GPU_HOUR,
                                PricingModel)
from repro.errors import ConfigError


class TestPricing:
    def test_table1_burn_rate(self):
        """Table I: 2,240 GPUs cost $11,200/hour."""
        assert DEFAULT_PRICING.dollars_per_hour(2240) == pytest.approx(11_200)

    def test_table1_total_cost(self):
        """Table I row 1: 33.52 days on 2,240 GPUs ~ $9.01M."""
        cost = DEFAULT_PRICING.cost_of_days(2240, 33.52)
        assert cost == pytest.approx(9.01e6, rel=0.01)

    def test_cost_linear_in_time(self):
        assert DEFAULT_PRICING.cost(8, 7200) == pytest.approx(
            2 * DEFAULT_PRICING.cost(8, 3600))

    def test_default_constant(self):
        assert DEFAULT_PRICING.dollars_per_gpu_hour == \
            P4D_DOLLARS_PER_GPU_HOUR

    def test_custom_rate(self):
        cheap = PricingModel(dollars_per_gpu_hour=1.0)
        assert cheap.dollars_per_hour(100) == pytest.approx(100.0)

    def test_rejects_free_gpus(self):
        with pytest.raises(ConfigError):
            PricingModel(dollars_per_gpu_hour=0.0)

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigError):
            DEFAULT_PRICING.cost(8, -1.0)

    def test_rejects_zero_gpus(self):
        with pytest.raises(ConfigError):
            DEFAULT_PRICING.dollars_per_hour(0)
