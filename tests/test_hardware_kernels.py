"""Unit tests for the analytical GPU kernel-timing model."""

import pytest

from repro.errors import ConfigError
from repro.hardware.gpu import A100_80GB, H100_80GB
from repro.hardware.kernels import DeviceModel, KernelKind


@pytest.fixture
def model() -> DeviceModel:
    return DeviceModel(A100_80GB)


class TestGemm:
    def test_large_gemm_near_sustained_peak(self, model):
        """A transformer-sized GEMM should achieve close to the
        calibrated efficiency ceiling."""
        kernel = model.gemm(2048, 8192, 8192)
        achieved = kernel.flops / kernel.duration
        ceiling = A100_80GB.peak_fp16_flops * model.max_gemm_efficiency
        assert 0.85 * ceiling < achieved <= ceiling

    def test_small_gemm_much_less_efficient(self, model):
        big = model.gemm(4096, 4096, 4096)
        small = model.gemm(64, 64, 64)
        eff_big = big.flops / big.duration
        eff_small = small.flops / small.duration
        assert eff_small < 0.2 * eff_big

    def test_duration_monotone_in_k(self, model):
        times = [model.gemm(1024, 1024, k).duration
                 for k in (256, 512, 1024, 2048, 4096)]
        assert times == sorted(times)

    def test_batched_gemm_kind(self, model):
        kernel = model.gemm(128, 128, 64, batch=16)
        assert kernel.kind is KernelKind.BATCHED_GEMM

    def test_batched_gemm_scales_with_batch(self, model):
        one = model.gemm(512, 512, 512, batch=8)
        two = model.gemm(512, 512, 512, batch=16)
        assert two.duration > one.duration

    def test_memory_bound_gemm_hits_bandwidth(self, model):
        """A skinny GEMM (tiny k) is bandwidth-limited."""
        kernel = model.gemm(8192, 8192, 8)
        bandwidth = kernel.bytes_accessed / kernel.duration
        assert bandwidth > 0.9 * model.effective_bandwidth

    def test_kernel_name_is_cublas_flavoured(self, model):
        kernel = model.gemm(2048, 2048, 2048, name_hint="qkv")
        assert kernel.name.startswith("ampere_fp16_s16816gemm")
        assert "qkv" in kernel.name

    def test_rejects_non_positive_dims(self, model):
        with pytest.raises(ConfigError):
            model.gemm(0, 128, 128)

    def test_wave_quantization_visible(self, model):
        """Exact wave multiples double cleanly: 216 tiles = 2 x 108."""
        one_wave = model.gemm(128, 128 * 108, 4096)
        two_waves = model.gemm(128, 128 * 216, 4096)
        assert two_waves.duration == pytest.approx(2 * one_wave.duration,
                                                   rel=0.01)

    def test_tile_selector_dodges_partial_waves(self, model):
        """One extra tile row (109 x 128-wide) does NOT double the time:
        the cuBLAS-style selector falls back to smaller tiles."""
        one_wave = model.gemm(128, 128 * 108, 4096)
        ragged = model.gemm(128, 128 * 109, 4096)
        assert ragged.duration < 1.35 * one_wave.duration

    def test_faster_gpu_is_faster(self):
        a100 = DeviceModel(A100_80GB).gemm(4096, 4096, 4096)
        h100 = DeviceModel(H100_80GB).gemm(4096, 4096, 4096)
        assert h100.duration < a100.duration


class TestMemoryBoundKernels:
    def test_elementwise_bandwidth_bound(self, model):
        kernel = model.elementwise(1 << 24, name="gelu")
        assert kernel.bytes_accessed / kernel.duration <= (
            model.effective_bandwidth * 1.001)

    def test_elementwise_extra_reads_cost_more(self, model):
        base = model.elementwise(1 << 20, name="x", reads=1)
        residual = model.elementwise(1 << 20, name="x", reads=2)
        assert residual.duration > base.duration

    def test_reduction_passes_scale_duration(self, model):
        two = model.reduction(4096, 4096, name="ln", passes=2.0)
        three = model.reduction(4096, 4096, name="sm", passes=3.0)
        assert three.duration > two.duration

    def test_embedding_lookup(self, model):
        kernel = model.embedding_lookup(4096, 1024)
        assert kernel.kind is KernelKind.EMBEDDING
        assert kernel.bytes_accessed == pytest.approx(2 * 4096 * 1024 * 2)

    def test_optimizer_update_traffic(self, model):
        kernel = model.optimizer_update(1_000_000)
        assert kernel.bytes_accessed == pytest.approx(28e6)

    def test_rejects_non_positive_elements(self, model):
        with pytest.raises(ConfigError):
            model.elementwise(0, name="zero")
        with pytest.raises(ConfigError):
            model.reduction(0, 8, name="zero")
        with pytest.raises(ConfigError):
            model.optimizer_update(0)


class TestDeterminism:
    def test_same_shape_same_duration(self, model):
        first = model.gemm(1234, 567, 890)
        second = model.gemm(1234, 567, 890)
        assert first.duration == second.duration

    def test_scaled_copy(self, model):
        kernel = model.gemm(512, 512, 512)
        slower = kernel.scaled(1.3)
        assert slower.duration == pytest.approx(1.3 * kernel.duration)
        assert slower.flops == kernel.flops


class TestConstruction:
    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigError):
            DeviceModel(A100_80GB, max_gemm_efficiency=0.0)
        with pytest.raises(ConfigError):
            DeviceModel(A100_80GB, sustained_memory_fraction=1.5)
