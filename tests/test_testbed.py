"""Unit tests for the noise sources and the testbed emulator."""

import pytest

from repro.config.parallelism import ParallelismConfig
from repro.config.system import multi_node, single_node
from repro.errors import ConfigError
from repro.graph.builder import Granularity
from repro.sim.estimator import VTrain
from repro.testbed import noise
from repro.testbed.emulator import TestbedConfig, TestbedEmulator


class TestNoise:
    def test_unit_in_range_and_deterministic(self):
        values = [noise.unit(f"key-{i}") for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert noise.unit("key-7") == values[7]

    def test_unit_spreads(self):
        values = [noise.unit(f"spread-{i}") for i in range(500)]
        assert 0.4 < sum(values) / len(values) < 0.6

    def test_symmetric_range(self):
        values = [noise.symmetric(f"s-{i}") for i in range(200)]
        assert all(-1.0 <= v < 1.0 for v in values)

    def test_jitter_bounds(self):
        values = [noise.jitter(f"j-{i}", 0.05) for i in range(200)]
        assert all(0.95 <= v < 1.05 for v in values)

    def test_jitter_rejects_negative_amplitude(self):
        with pytest.raises(ValueError):
            noise.jitter("x", -0.1)

    def test_lognormal_median_near_one(self):
        values = sorted(noise.lognormal(f"l-{i}", 0.05) for i in range(501))
        assert values[250] == pytest.approx(1.0, abs=0.02)

    def test_one_sided_never_speeds_up(self):
        values = [noise.one_sided(f"o-{i}", 0.3) for i in range(100)]
        assert all(1.0 <= v < 1.3 for v in values)


class TestEmulator:
    def test_measurement_is_deterministic(self, tiny_model, training):
        emulator = TestbedEmulator(single_node())
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        first = emulator.measure_time(tiny_model, plan, training)
        second = emulator.measure_time(tiny_model, plan, training)
        assert first == second

    def test_measured_exceeds_predicted(self, tiny_model, training):
        """The testbed carries overheads vTrain does not model, so the
        paper's systematic underestimation must appear."""
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        predicted = VTrain(single_node()).predict(
            tiny_model, plan, training).iteration_time
        measured = TestbedEmulator(single_node()).measure_time(
            tiny_model, plan, training)
        assert measured > predicted

    def test_different_seeds_differ(self, tiny_model, training):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        a = TestbedEmulator(single_node(),
                            config=TestbedConfig(seed="run-a"))
        b = TestbedEmulator(single_node(),
                            config=TestbedConfig(seed="run-b"))
        assert a.measure_time(tiny_model, plan, training) != \
            b.measure_time(tiny_model, plan, training)

    def test_stage_granularity_rejected(self):
        with pytest.raises(ConfigError):
            TestbedEmulator(single_node(), granularity=Granularity.STAGE)

    def test_tp_heavy_config_underestimated_more(self, small_model, training):
        """Section IV: the prediction gap is 'especially more pronounced
        when tensor parallelism is employed'."""
        def gap(plan):
            predicted = VTrain(single_node(), check_memory_feasibility=False
                               ).predict(small_model, plan, training)
            measured = TestbedEmulator(single_node()).measure_time(
                small_model, plan, training)
            return (measured - predicted.iteration_time) / measured

        tp_heavy = gap(ParallelismConfig(tensor=8, data=1, pipeline=1,
                                         micro_batch_size=2))
        dp_only = gap(ParallelismConfig(tensor=1, data=8, pipeline=1,
                                        micro_batch_size=2))
        assert tp_heavy > dp_only

    def test_multinode_carries_sync_overhead(self, small_model, training):
        """Short multi-node iterations suffer relatively more error."""
        plan = ParallelismConfig(tensor=8, data=2, pipeline=1,
                                 micro_batch_size=2)
        system = multi_node(2)
        predicted = VTrain(system, check_memory_feasibility=False).predict(
            small_model, plan, training).iteration_time
        measured = TestbedEmulator(system).measure_time(small_model, plan,
                                                        training)
        config = TestbedConfig()
        assert measured - predicted > config.internode_sync_overhead * 0.5

    def test_with_seed_helper(self):
        config = TestbedConfig().with_seed("other")
        assert config.seed == "other"
        assert config.nccl_interference == TestbedConfig().nccl_interference

    def test_kernel_granularity_supported(self, tiny_model, training):
        emulator = TestbedEmulator(single_node(),
                                   granularity=Granularity.KERNEL)
        plan = ParallelismConfig(tensor=2, data=2, pipeline=1,
                                 micro_batch_size=4)
        assert emulator.measure_time(tiny_model, plan, training) > 0

    def test_kernel_counts_follow_current_plan_on_cache_hit(
            self, tiny_model, training):
        """Two recompute modes share a compiled topology (the fingerprint
        excludes recompute outside KERNEL granularity), but the kernel
        counts behind the launch-overhead model must come from the plan
        being measured, not from the cached structure's payloads."""
        from repro.config.parallelism import RecomputeMode
        emulator = TestbedEmulator(single_node())
        plan_none = ParallelismConfig(tensor=2, data=2, pipeline=1,
                                      micro_batch_size=2,
                                      recompute=RecomputeMode.NONE)
        plan_full = plan_none.replaced(recompute=RecomputeMode.FULL)
        emulator.measure(tiny_model, plan_none, training)  # caches topology
        prepared = emulator._vtrain.prepare(tiny_model, plan_full, training)
        assert prepared.structure_cache_hit
        counts = emulator._kernel_counts(prepared)
        table = prepared.builder.slot_kernel_counts()
        bwd_mha_count = table["op:bwd_mha"]
        # FULL recompute replays forward kernels in backward: strictly
        # more kernels than the NONE-mode payloads the cache captured.
        none_table = emulator._vtrain.prepare(
            tiny_model, plan_none, training).builder.slot_kernel_counts()
        assert bwd_mha_count > none_table["op:bwd_mha"]
        assert bwd_mha_count in counts


class TestGoldenMeasurements:
    """Exact pinned measure() outputs.

    The batched-sampling refactor hoisted the campaign-level draws
    (calibration, contention, SM penalty) out of the per-measurement
    path; these golden values prove the hoist moved no bits — every
    historical measurement is reproduced exactly.
    """

    def test_single_node_golden(self, tiny_model, training):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        measured = TestbedEmulator(single_node()).measure(tiny_model, plan,
                                                          training)
        assert measured.iteration_time == 0.005691257955599904
        assert measured.num_tasks == 162
        assert measured.session_key == \
            "a100-testbed/512x4x128x8/(2, 2, 2)-way, m=2, 1f1b/B16"

    def test_single_node_clean_golden(self, tiny_model, training):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        emulator = TestbedEmulator(
            single_node(), config=TestbedConfig().without_interference())
        assert emulator.measure_time(tiny_model, plan, training) == \
            0.005626859139051697

    def test_multi_node_golden(self, small_model, training):
        plan = ParallelismConfig(tensor=2, data=4, pipeline=4,
                                 micro_batch_size=2)
        measured = TestbedEmulator(multi_node(4)).measure(small_model, plan,
                                                          training)
        assert measured.iteration_time == 0.14357382017975193
        assert measured.session_key == \
            "a100-testbed/1024x8x512x16/(2, 4, 4)-way, m=2, 1f1b/B16"

    def test_multi_node_clean_golden(self, small_model, training):
        plan = ParallelismConfig(tensor=2, data=4, pipeline=4,
                                 micro_batch_size=2)
        emulator = TestbedEmulator(
            multi_node(4), config=TestbedConfig().without_interference())
        assert emulator.measure_time(small_model, plan, training) == \
            0.012715710049276203


class TestMeasureSamples:
    def test_sample_zero_is_measure(self, tiny_model, training):
        emulator = TestbedEmulator(single_node())
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        samples = emulator.measure_samples(tiny_model, plan, training, 4)
        assert samples[0] == emulator.measure(tiny_model, plan, training)

    def test_samples_deterministic_and_distinct(self, tiny_model, training):
        emulator = TestbedEmulator(single_node())
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        first = emulator.measure_samples(tiny_model, plan, training, 5)
        second = emulator.measure_samples(tiny_model, plan, training, 5)
        assert first == second
        assert len({sample.iteration_time for sample in first}) == 5

    def test_sample_sessions_derive_from_base(self, tiny_model, training):
        emulator = TestbedEmulator(single_node())
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        samples = emulator.measure_samples(tiny_model, plan, training, 3)
        base = samples[0].session_key
        assert [sample.session_key for sample in samples] == \
            [base, f"{base}/it1", f"{base}/it2"]

    def test_batched_samples_match_scalar_replays(self, small_model,
                                                  training):
        """Each batched sample equals a scalar replay of its own
        perturbed duration vector plus its own overhead draws — the
        bit-identity contract of the batched measurement path, on the
        multi-node emulator where every perturbation source is live."""
        from repro.sim.engine import simulate_retimed
        from repro.testbed import noise
        emulator = TestbedEmulator(multi_node(4))
        plan = ParallelismConfig(tensor=2, data=4, pipeline=4,
                                 micro_batch_size=2)
        samples = emulator.measure_samples(small_model, plan, training, 4)
        prepared = emulator._vtrain.prepare(small_model, plan, training)
        draws = emulator._session_draws(small_model, plan)
        counts = emulator._kernel_counts(prepared)
        base = emulator._session_key(small_model, plan, training)
        for index, sample in enumerate(samples):
            session = base if index == 0 else f"{base}/it{index}"
            perturbed = emulator._perturb(prepared.structure,
                                          prepared.durations, counts, plan,
                                          session, draws)
            replay = simulate_retimed(prepared.structure, perturbed)
            overhead = emulator.config.iteration_overhead * noise.one_sided(
                session + "/iter_overhead", 1.0)
            overhead += (emulator.config.internode_sync_overhead
                         * noise.jitter(session + "/sync_overhead", 0.3))
            assert sample.iteration_time == \
                replay.iteration_time + overhead

    def test_zero_samples_rejected(self, tiny_model, training):
        emulator = TestbedEmulator(single_node())
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        with pytest.raises(ConfigError, match="num_samples"):
            emulator.measure_samples(tiny_model, plan, training, 0)
