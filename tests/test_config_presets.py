"""Unit tests for the paper's model and plan presets."""

import pytest

from repro.config.parallelism import TrainingConfig, validate_plan
from repro.config.presets import (MODEL_ZOO, MT_NLG_530B,
                                  MT_NLG_BASELINE_PLANS, MT_NLG_TRAINING,
                                  MT_NLG_VTRAIN_PLANS, TABLE_II_ROWS,
                                  TABLE_III_MODELS)


class TestMTNLG:
    def test_hyperparameters_match_section_va(self):
        assert MT_NLG_530B.hidden_size == 20_480
        assert MT_NLG_530B.num_layers == 105
        assert MT_NLG_530B.num_heads == 128

    def test_training_recipe(self):
        assert MT_NLG_TRAINING.global_batch_size == 1920
        assert MT_NLG_TRAINING.total_tokens == 270e9

    def test_iteration_count_near_68k(self):
        """Section V-A: ~68,000 iterations for end-to-end training."""
        iterations = MT_NLG_TRAINING.num_iterations(MT_NLG_530B)
        assert iterations == pytest.approx(68_000, rel=0.02)

    @pytest.mark.parametrize("plan", MT_NLG_BASELINE_PLANS)
    def test_baseline_plans_are_structurally_valid(self, plan):
        validate_plan(MT_NLG_530B, plan, MT_NLG_TRAINING, plan.total_gpus)

    @pytest.mark.parametrize("plan", MT_NLG_VTRAIN_PLANS)
    def test_vtrain_plans_are_structurally_valid(self, plan):
        validate_plan(MT_NLG_530B, plan, MT_NLG_TRAINING, plan.total_gpus)

    def test_baseline_gpu_counts_match_table1(self):
        assert [p.total_gpus for p in MT_NLG_BASELINE_PLANS] == [
            2240, 2800, 3360]

    def test_vtrain_plans_use_fewer_or_equal_gpus(self):
        for base, ours in zip(MT_NLG_BASELINE_PLANS, MT_NLG_VTRAIN_PLANS):
            assert ours.total_gpus <= base.total_gpus


class TestTableIII:
    def test_three_models(self):
        assert len(TABLE_III_MODELS) == 3

    @pytest.mark.parametrize("spec,expected", zip(
        TABLE_III_MODELS, [(40, 6144, 48, 1024), (48, 8192, 64, 1536),
                           (64, 10240, 80, 1792)]))
    def test_rows_match_paper(self, spec, expected):
        layers, hidden, heads, batch = expected
        assert spec.model.num_layers == layers
        assert spec.model.hidden_size == hidden
        assert spec.model.num_heads == heads
        assert spec.global_batch_size == batch


class TestTableII:
    def test_rows_cover_64_256_512_gpus(self):
        assert [row.num_gpus for row in TABLE_II_ROWS] == [64, 256, 512]

    @pytest.mark.parametrize("row", TABLE_II_ROWS)
    def test_both_plans_valid(self, row):
        training = TrainingConfig(global_batch_size=row.global_batch_size)
        validate_plan(row.model, row.megatron_plan, training, row.num_gpus)
        validate_plan(row.model, row.vtrain_plan, training, row.num_gpus)


class TestZoo:
    def test_zoo_is_keyed_by_name(self):
        for name, model in MODEL_ZOO.items():
            assert model.name == name

    def test_zoo_models_are_distinct(self):
        sizes = [m.num_parameters() for m in MODEL_ZOO.values()]
        assert len(set(sizes)) == len(sizes)
