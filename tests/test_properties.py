"""Property-based tests (hypothesis) on core invariants.

These cover the algebraic heart of the simulator: parameter/FLOP
accounting, Equation 1, schedule completeness, graph acyclicity, engine
monotonicity, and memory-model monotonicity — across randomly drawn
configurations rather than hand-picked ones.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config.model import ModelConfig
from repro.config.parallelism import (ParallelismConfig, PipelineSchedule,
                                      TrainingConfig)
from repro.config.system import single_node
from repro.graph.pipeline import (gpipe_order, one_f_one_b_order,
                                  pipeline_bubble_fraction)
from repro.graph.structure import (COMPUTE_STREAM, GraphAssembler,
                                   KIND_COMPUTE)
from repro.hardware.gpu import A100_80GB
from repro.hardware.interconnect import RingParameters
from repro.hardware.kernels import DeviceModel
from repro.memory.footprint import memory_footprint
from repro.profiling.cupti import CuptiTracer
from repro.profiling.lookup import OperatorToTaskTable
from repro.profiling.nccl import NcclModel
from repro.sim.engine import critical_path_length, simulate
from repro.testbed import noise

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

head_counts = st.sampled_from([4, 8, 16])
hidden_mults = st.integers(min_value=2, max_value=8)


@st.composite
def models(draw):
    heads = draw(head_counts)
    hidden = heads * 64 * draw(st.integers(min_value=1, max_value=4))
    layers = draw(st.sampled_from([2, 4, 8]))
    seq = draw(st.sampled_from([64, 128, 256]))
    return ModelConfig(hidden_size=hidden, num_layers=layers,
                       seq_length=seq, num_heads=heads, vocab_size=8192)


@st.composite
def plans_8gpu(draw, model):
    ways = [(1, 8, 1), (2, 4, 1), (4, 2, 1), (8, 1, 1), (2, 2, 2),
            (1, 4, 2), (1, 2, 4), (2, 1, 4), (1, 1, 8), (4, 1, 2)]
    valid = [(t, d, p) for t, d, p in ways
             if model.num_heads % t == 0 and model.num_layers % p == 0]
    t, d, p = draw(st.sampled_from(valid))
    schedule = draw(st.sampled_from(list(PipelineSchedule)))
    per_replica = 8 // d  # the tests use a global batch of 8 sequences
    micro = draw(st.sampled_from([m for m in (1, 2) if per_replica % m == 0]))
    return ParallelismConfig(tensor=t, data=d, pipeline=p,
                             micro_batch_size=micro, schedule=schedule)


# ---------------------------------------------------------------------------
# Model accounting
# ---------------------------------------------------------------------------

@given(models())
def test_parameter_count_positive_and_consistent(model):
    total = model.num_parameters()
    assert total > 0
    assert total >= model.num_layers * model.params_per_layer()
    # 12 L h^2 dominates for any transformer shape.
    assert total >= 12 * model.num_layers * model.hidden_size ** 2


@given(models(), st.integers(min_value=1, max_value=1_000_000))
def test_flops_linear_in_tokens(model, tokens):
    per_token = model.flops_per_token()
    assert model.model_flops_per_iteration(tokens) == per_token * tokens


@given(models(), st.integers(min_value=1, max_value=8))
def test_padded_vocab_properties(model, tensor):
    padded = model.padded_vocab_size(tensor)
    assert padded >= model.vocab_size
    assert padded % (128 * tensor) == 0
    assert padded - model.vocab_size < 128 * tensor


# ---------------------------------------------------------------------------
# Equation 1 / ring collectives
# ---------------------------------------------------------------------------

@given(st.floats(min_value=1.0, max_value=1e10),
       st.integers(min_value=2, max_value=64))
def test_allreduce_monotone_in_size_and_bounded(size, group):
    ring = RingParameters(bus_bandwidth=1e11, base_latency=1e-6,
                          hop_latency=1e-7)
    time = ring.allreduce_time(size, group)
    bigger = ring.allreduce_time(size * 2, group)
    assert bigger > time
    # transfer term is below 2 S / B always (the n->inf asymptote).
    latency = 1e-6 + 1e-7 * 2 * (group - 1)
    assert time - latency <= 2 * size / 1e11 + 1e-15


@given(st.integers(min_value=2, max_value=64))
def test_allreduce_group_factor_increasing(group):
    ring = RingParameters(bus_bandwidth=1e11, base_latency=0.0,
                          hop_latency=0.0)
    size = 1e9
    assert ring.allreduce_time(size, group + 1) > ring.allreduce_time(size,
                                                                      group)


# ---------------------------------------------------------------------------
# Pipeline schedules
# ---------------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=64))
def test_gpipe_schedule_complete(nmb):
    order = gpipe_order(nmb)
    assert len(order) == 2 * nmb
    fwd = [c.micro_batch for c in order if c.phase == "F"]
    bwd = [c.micro_batch for c in order if c.phase == "B"]
    assert sorted(fwd) == list(range(nmb))
    assert sorted(bwd) == list(range(nmb))


@given(st.integers(min_value=1, max_value=16),
       st.integers(min_value=1, max_value=64))
def test_1f1b_schedule_complete_and_causal(num_stages, nmb):
    for stage in range(num_stages):
        order = one_f_one_b_order(stage, num_stages, nmb)
        assert len(order) == 2 * nmb
        # A backward for micro-batch i never precedes its forward.
        seen_forward = set()
        for chunk in order:
            if chunk.phase == "F":
                seen_forward.add(chunk.micro_batch)
            else:
                assert chunk.micro_batch in seen_forward


@given(st.integers(min_value=1, max_value=32),
       st.integers(min_value=1, max_value=128))
def test_bubble_fraction_in_unit_interval(stages, nmb):
    bubble = pipeline_bubble_fraction(stages, nmb)
    assert 0.0 <= bubble < 1.0


# ---------------------------------------------------------------------------
# Engine invariants
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=1e-6, max_value=10.0), min_size=1,
                max_size=30))
def test_chain_iteration_time_is_sum(durations):
    asm = GraphAssembler()
    for index, duration in enumerate(durations):
        asm.add(0, COMPUTE_STREAM, duration, KIND_COMPUTE, f"t{index}")
    result = simulate(asm.finish(num_devices=1))
    assert abs(result.iteration_time - sum(durations)) < 1e-9 * len(durations)


@settings(suppress_health_check=[HealthCheck.too_slow])
@given(st.data())
def test_graph_invariants_random_configs(data):
    """For random (model, plan): the graph is acyclic, the critical path
    lower-bounds the simulated time, and total busy time upper-bounds
    nothing less than per-device durations."""
    model = data.draw(models())
    plan = data.draw(plans_8gpu(model))
    training = TrainingConfig(global_batch_size=8)
    system = single_node()
    device = DeviceModel(system.gpu)
    lookup = OperatorToTaskTable(CuptiTracer(device))
    from repro.graph.builder import GraphBuilder
    graph = GraphBuilder(model, system, plan, training, lookup,
                         NcclModel(system)).build()
    graph.validate_acyclic()
    result = simulate(graph)
    assert critical_path_length(graph) <= result.iteration_time + 1e-12
    # Compute-stream work serialises, so its busy time bounds the
    # makespan from below; comm-stream work may overlap it (Figure 5a)
    # and is deliberately excluded.
    compute_kinds = ("compute", "tp_allreduce", "weight_update")
    for device_id, busy in result.device_busy.items():
        compute_busy = sum(busy.get(kind, 0.0) for kind in compute_kinds)
        assert compute_busy <= result.iteration_time + 1e-9


@settings(suppress_health_check=[HealthCheck.too_slow])
@given(st.data())
def test_scaling_durations_scales_iteration_time(data):
    """Scaling every task duration by k scales the makespan by k."""
    model = data.draw(models())
    plan = data.draw(plans_8gpu(model))
    factor = data.draw(st.floats(min_value=1.1, max_value=3.0))
    training = TrainingConfig(global_batch_size=8)
    system = single_node()
    lookup = OperatorToTaskTable(CuptiTracer(DeviceModel(system.gpu)))
    from repro.graph.builder import GraphBuilder
    from repro.graph.structure import ExecutionGraph, TaskNode
    graph = GraphBuilder(model, system, plan, training, lookup,
                         NcclModel(system)).build()
    base = simulate(graph).iteration_time
    scaled_nodes = [TaskNode(task_id=n.task_id, device=n.device,
                             stream=n.stream, duration=n.duration * factor,
                             kind=n.kind, label=n.label, children=n.children,
                             num_parents=n.num_parents)
                    for n in graph.nodes]
    scaled = ExecutionGraph(nodes=scaled_nodes,
                            num_devices=graph.num_devices)
    assert simulate(scaled).iteration_time * (1 - 1e-9) <= base * factor \
        <= simulate(scaled).iteration_time * (1 + 1e-9)


# ---------------------------------------------------------------------------
# Memory model
# ---------------------------------------------------------------------------

@given(st.data())
def test_memory_monotone_in_micro_batch(data):
    model = data.draw(models())
    training = TrainingConfig(global_batch_size=8)
    small = ParallelismConfig(tensor=1, data=1, pipeline=1,
                              micro_batch_size=1)
    large = ParallelismConfig(tensor=1, data=1, pipeline=1,
                              micro_batch_size=2)
    assert memory_footprint(model, large, training).total >= \
        memory_footprint(model, small, training).total


@given(st.data())
def test_memory_shrinks_with_model_parallelism(data):
    model = data.draw(models())
    training = TrainingConfig(global_batch_size=8)
    base = ParallelismConfig(tensor=1, data=1, pipeline=1)
    sharded = ParallelismConfig(tensor=model.num_heads // 2 or 1, data=1,
                                pipeline=1)
    assert memory_footprint(model, sharded, training).model_states <= \
        memory_footprint(model, base, training).model_states


# ---------------------------------------------------------------------------
# Device model and noise
# ---------------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=4096),
       st.integers(min_value=1, max_value=4096),
       st.integers(min_value=1, max_value=4096))
def test_gemm_time_positive_and_bounded_below(m, n, k):
    device = DeviceModel(A100_80GB)
    kernel = device.gemm(m, n, k)
    assert kernel.duration > 0
    ideal = kernel.flops / A100_80GB.peak_fp16_flops
    assert kernel.duration >= ideal  # can't beat the speed of light


@given(st.text(min_size=1, max_size=64))
def test_noise_unit_stable_and_in_range(key):
    value = noise.unit(key)
    assert 0.0 <= value < 1.0
    assert noise.unit(key) == value


@given(st.text(min_size=1, max_size=32),
       st.floats(min_value=0.0, max_value=0.5))
def test_jitter_bounds_property(key, amplitude):
    factor = noise.jitter(key, amplitude)
    assert 1.0 - amplitude <= factor <= 1.0 + amplitude
