"""Unit tests for the multi-tenant cluster substrate (case study #2)."""

import pytest

from repro.cluster.job import JobOutcome, JobSpec
from repro.cluster.metrics import (average_jct, completed_fraction,
                                   deadline_satisfactory_ratio, makespan)
from repro.cluster.scheduler import ElasticFlowScheduler, SchedulableJob
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.throughput import ThroughputProfile
from repro.cluster.trace import makespan_trace, synthesize_trace
from repro.errors import ConfigError, SchedulingError


def profile(name="m", rates=((8, 1.0), (16, 1.8), (32, 3.0))):
    return ThroughputProfile(model_name=name, table=tuple(rates))


def scheduler(profiles=None, total_gpus=64):
    profiles = profiles or {"m": profile()}
    return ElasticFlowScheduler(profiles, total_gpus=total_gpus)


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            JobSpec(job_id=0, model_name="m", num_iterations=0,
                    arrival_time=0.0)
        with pytest.raises(ConfigError):
            JobSpec(job_id=0, model_name="m", num_iterations=1,
                    arrival_time=10.0, deadline=5.0)

    def test_outcome_deadline_logic(self):
        spec = JobSpec(job_id=0, model_name="m", num_iterations=10,
                       arrival_time=0.0, deadline=100.0)
        met = JobOutcome(spec=spec, completion_time=90.0, terminated=False,
                         gpu_seconds=10.0)
        missed = JobOutcome(spec=spec, completion_time=None, terminated=True,
                            gpu_seconds=10.0)
        assert met.met_deadline and met.jct == 90.0
        assert not missed.met_deadline and missed.jct is None


class TestThroughputProfile:
    def test_rate_floors_to_candidate(self):
        prof = profile()
        assert prof.rate(8) == 1.0
        assert prof.rate(24) == 1.8  # floors to 16
        assert prof.rate(7) == 0.0

    def test_next_step(self):
        prof = profile()
        assert prof.next_step(8) == 16
        assert prof.next_step(32) is None

    def test_speedup(self):
        assert profile().speedup(32) == pytest.approx(3.0)

    def test_rejects_empty_or_unsorted(self):
        with pytest.raises(ConfigError):
            ThroughputProfile(model_name="m", table=())
        with pytest.raises(ConfigError):
            ThroughputProfile(model_name="m", table=((16, 1.0), (8, 0.5)))


class TestScheduler:
    def _job(self, job_id=0, remaining=100.0, deadline=None, arrival=0.0):
        return SchedulableJob(job_id=job_id, model_name="m",
                              remaining_iterations=remaining,
                              arrival_time=arrival, deadline=deadline)

    def test_best_effort_gets_minimum_then_surplus(self):
        alloc = scheduler().allocate([self._job()], now=0.0)
        assert alloc[0] == 32  # all surplus goes to the only job

    def test_surplus_split_by_marginal_gain(self):
        jobs = [self._job(job_id=0), self._job(job_id=1)]
        alloc = scheduler(total_gpus=40).allocate(jobs, now=0.0)
        assert sum(alloc.values()) <= 40
        assert all(g >= 8 for g in alloc.values())

    def test_deadline_job_gets_minimum_satisfactory_share(self):
        # 100 iterations, 60s budget: needs rate >= 1.67 -> 16 GPUs.
        job = self._job(deadline=60.0)
        alloc = ElasticFlowScheduler({"m": profile()}, total_gpus=16
                                     ).allocate([job], now=0.0)
        assert alloc[0] == 16

    def test_infeasible_deadline_declined(self):
        # 1000 iterations in 10s is impossible even at 32 GPUs.
        job = self._job(remaining=1000.0, deadline=10.0)
        alloc = scheduler().allocate([job], now=0.0)
        assert alloc[0] == 0

    def test_edf_priority_under_contention(self):
        urgent = self._job(job_id=0, remaining=100.0, deadline=60.0)
        relaxed = self._job(job_id=1, remaining=100.0, deadline=1000.0)
        alloc = ElasticFlowScheduler({"m": profile()}, total_gpus=16
                                     ).allocate([relaxed, urgent], now=0.0)
        assert alloc[0] == 16  # urgent job wins the scarce GPUs
        assert alloc[1] == 0

    def test_unknown_model_raises(self):
        job = SchedulableJob(job_id=0, model_name="ghost",
                             remaining_iterations=1.0, arrival_time=0.0,
                             deadline=None)
        with pytest.raises(SchedulingError):
            scheduler().allocate([job], now=0.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(SchedulingError):
            ElasticFlowScheduler({"m": profile()}, total_gpus=0)


class TestSimulator:
    def test_single_job_completes(self):
        jobs = [JobSpec(job_id=0, model_name="m", num_iterations=300,
                        arrival_time=0.0)]
        result = ClusterSimulator(scheduler()).run(jobs)
        outcome = result.outcomes[0]
        # 300 iterations at 3.0 it/s (32 GPUs) = 100 s.
        assert outcome.completion_time == pytest.approx(100.0, rel=1e-6)
        assert outcome.gpu_seconds == pytest.approx(3200.0, rel=1e-6)

    def test_deadline_miss_terminates(self):
        jobs = [JobSpec(job_id=0, model_name="m", num_iterations=10_000,
                        arrival_time=0.0, deadline=10.0)]
        result = ClusterSimulator(scheduler()).run(jobs)
        assert result.outcomes[0].terminated
        assert not result.outcomes[0].met_deadline

    def test_arrival_ordering_respected(self):
        jobs = [JobSpec(job_id=0, model_name="m", num_iterations=300,
                        arrival_time=50.0)]
        result = ClusterSimulator(scheduler()).run(jobs)
        assert result.outcomes[0].completion_time == pytest.approx(150.0,
                                                                   rel=1e-6)

    def test_contention_slows_completion(self):
        solo = ClusterSimulator(scheduler(total_gpus=32)).run(
            [JobSpec(job_id=0, model_name="m", num_iterations=300,
                     arrival_time=0.0)])
        shared = ClusterSimulator(scheduler(total_gpus=32)).run(
            [JobSpec(job_id=0, model_name="m", num_iterations=300,
                     arrival_time=0.0),
             JobSpec(job_id=1, model_name="m", num_iterations=300,
                     arrival_time=0.0)])
        assert shared.outcomes[0].completion_time > \
            solo.outcomes[0].completion_time

    def test_metrics(self):
        jobs = [JobSpec(job_id=0, model_name="m", num_iterations=300,
                        arrival_time=0.0, deadline=200.0),
                JobSpec(job_id=1, model_name="m", num_iterations=30_000,
                        arrival_time=0.0, deadline=150.0)]
        result = ClusterSimulator(scheduler()).run(jobs)
        assert deadline_satisfactory_ratio(result) == pytest.approx(0.5)
        assert completed_fraction(result) == pytest.approx(0.5)
        assert average_jct(result) > 0
        assert makespan(result) > 0

    def test_empty_metrics_raise(self):
        from repro.cluster.simulator import ClusterRunResult
        with pytest.raises(SchedulingError):
            deadline_satisfactory_ratio(ClusterRunResult())


class TestTraces:
    def _profiles(self):
        from repro.config.presets import TABLE_III_MODELS
        return {spec.model.name: profile(spec.model.name,
                                         ((8, 0.01), (128, 0.1), (1024, 0.5)))
                for spec in TABLE_III_MODELS}

    def test_trace_is_deterministic(self):
        profiles = self._profiles()
        first = synthesize_trace(3, 16, profiles)
        second = synthesize_trace(3, 16, profiles)
        assert first == second

    def test_different_trace_ids_differ(self):
        profiles = self._profiles()
        assert synthesize_trace(1, 16, profiles) != synthesize_trace(
            2, 16, profiles)

    def test_arrivals_sorted_within_window(self):
        from repro.cluster.trace import DEFAULT_SUBMISSION_WINDOW
        jobs = synthesize_trace(1, 32, self._profiles())
        arrivals = [job.arrival_time for job in jobs]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] <= DEFAULT_SUBMISSION_WINDOW * 1.001

    def test_deadlines_follow_lambda_band(self):
        """Deadline = lambda * duration with lambda in [0.5, 1.5]."""
        jobs = synthesize_trace(1, 64, self._profiles())
        for job in jobs:
            slack = (job.deadline - job.arrival_time) / job.standalone_duration
            assert 0.5 <= slack <= 1.5

    def test_deadline_free_trace(self):
        jobs = synthesize_trace(1, 8, self._profiles(), with_deadlines=False)
        assert all(job.deadline is None for job in jobs)

    def test_makespan_trace_all_at_zero(self):
        jobs = makespan_trace(16, self._profiles())
        assert all(job.arrival_time == 0.0 for job in jobs)
        assert all(job.deadline is None for job in jobs)

    def test_rejects_zero_jobs(self):
        with pytest.raises(ConfigError):
            synthesize_trace(1, 0, self._profiles())
