"""Unit tests for cluster topology and rank mapping (Figure 3)."""

import pytest

from repro.config.parallelism import ParallelismConfig
from repro.config.system import multi_node, single_node
from repro.errors import ConfigError
from repro.hardware.cluster import ClusterTopology, RankCoordinates
from repro.hardware.interconnect import LinkType


@pytest.fixture
def figure3() -> ClusterTopology:
    """The paper's Figure 3 example: (4, 2, 3)-way on 6 nodes of 4 GPUs."""
    system = multi_node(6, gpus_per_node=4)
    plan = ParallelismConfig(tensor=4, data=2, pipeline=3)
    return ClusterTopology(system, plan)


class TestRankMapping:
    def test_round_trip(self, figure3):
        for rank in range(figure3.plan.total_gpus):
            coords = figure3.coords_of(rank)
            assert figure3.rank_of(coords) == rank

    def test_tensor_group_is_one_node(self, figure3):
        """Figure 3: the yellow All-Reduce stays inside a node."""
        for d in range(2):
            for p in range(3):
                group = figure3.tensor_group(d, p)
                nodes = {figure3.node_of(r) for r in group}
                assert len(nodes) == 1

    def test_pipeline_stages_on_consecutive_nodes(self, figure3):
        """Figure 3: replica 0 spans nodes 0-2, replica 1 spans 3-5."""
        pipeline = figure3.pipeline_group(0, 0)
        assert [figure3.node_of(r) for r in pipeline] == [0, 1, 2]
        pipeline = figure3.pipeline_group(0, 1)
        assert [figure3.node_of(r) for r in pipeline] == [3, 4, 5]

    def test_data_group_pairs_distant_nodes(self, figure3):
        """Figure 3: the gray All-Reduce pairs node i with node i+3."""
        group = figure3.data_group(0, 0)
        assert [figure3.node_of(r) for r in group] == [0, 3]

    def test_rejects_out_of_range(self, figure3):
        with pytest.raises(ConfigError):
            figure3.coords_of(24)
        with pytest.raises(ConfigError):
            figure3.rank_of(RankCoordinates(tensor=4, data=0, pipeline=0))


class TestLinkClassification:
    def test_figure3_links(self, figure3):
        assert figure3.tensor_link() is LinkType.INTRA_NODE
        assert figure3.data_link() is LinkType.INTER_NODE
        assert figure3.pipeline_hop_link(0) is LinkType.INTER_NODE

    def test_single_node_everything_intra(self):
        topo = ClusterTopology(single_node(),
                               ParallelismConfig(tensor=2, data=2, pipeline=2))
        assert topo.tensor_link() is LinkType.INTRA_NODE
        assert topo.data_link() is LinkType.INTRA_NODE
        assert topo.pipeline_hop_link(0) is LinkType.INTRA_NODE

    def test_trivial_degrees_report_intra(self):
        topo = ClusterTopology(single_node(),
                               ParallelismConfig(tensor=1, data=1, pipeline=8))
        assert topo.tensor_link() is LinkType.INTRA_NODE
        assert topo.data_link() is LinkType.INTRA_NODE

    def test_pipeline_hop_bounds(self, figure3):
        with pytest.raises(ConfigError):
            figure3.pipeline_hop_link(2)


class TestContention:
    def test_concurrent_dp_groups_figure3(self, figure3):
        """All 4 GPUs of a node drive inter-node DP traffic at once."""
        assert figure3.concurrent_data_groups_per_node() == 4

    def test_intra_node_dp_has_no_nic_contention(self):
        topo = ClusterTopology(single_node(),
                               ParallelismConfig(tensor=1, data=8, pipeline=1))
        assert topo.concurrent_data_groups_per_node() == 1

    def test_num_nodes_used(self, figure3):
        assert figure3.num_nodes_used() == 6

    def test_plan_too_large_rejected(self):
        with pytest.raises(ConfigError):
            ClusterTopology(single_node(),
                            ParallelismConfig(tensor=8, data=2, pipeline=1))
