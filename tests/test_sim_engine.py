"""Unit tests for the Algorithm-1 simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.graph.structure import (COMM_STREAM, COMPUTE_STREAM,
                                   ExecutionGraph, GraphAssembler,
                                   KIND_COMPUTE, KIND_DP_COMM)
from repro.sim.engine import (compute_idle_fraction, critical_path_length,
                              simulate, stream_serialisation_check)


def chain_graph(durations):
    asm = GraphAssembler()
    for index, duration in enumerate(durations):
        asm.add(0, COMPUTE_STREAM, duration, KIND_COMPUTE, f"t{index}")
    return asm.finish(num_devices=1)


class TestBasics:
    def test_chain_sums(self):
        result = simulate(chain_graph([1.0, 2.0, 3.0]))
        assert result.iteration_time == pytest.approx(6.0)
        assert result.num_tasks == 3

    def test_parallel_devices_take_max(self):
        asm = GraphAssembler()
        asm.add(0, COMPUTE_STREAM, 2.0, KIND_COMPUTE, "a")
        asm.add(1, COMPUTE_STREAM, 5.0, KIND_COMPUTE, "b")
        result = simulate(asm.finish(num_devices=2))
        assert result.iteration_time == pytest.approx(5.0)
        assert result.device_timeline[0] == pytest.approx(2.0)
        assert result.device_timeline[1] == pytest.approx(5.0)

    def test_dependency_delays_child(self):
        asm = GraphAssembler()
        a = asm.add(0, COMPUTE_STREAM, 3.0, KIND_COMPUTE, "a")
        asm.add(1, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "b", deps=(a,))
        result = simulate(asm.finish(num_devices=2))
        assert result.iteration_time == pytest.approx(4.0)

    def test_empty_graph_rejected(self):
        with pytest.raises(SimulationError):
            simulate(ExecutionGraph(nodes=[], num_devices=0))

    def test_cycle_detected(self):
        asm = GraphAssembler()
        a = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a", chain=False)
        b = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "b", deps=(a,),
                    chain=False)
        asm.link(b, a)
        with pytest.raises(SimulationError, match="deadlock"):
            simulate(asm.finish(num_devices=1))


class TestOverlap:
    def overlap_graph(self):
        """Compute chain of 3 x 1s; a 2s comm task depends on the first
        compute task and overlaps the rest (the Figure 5(a) pattern)."""
        asm = GraphAssembler()
        first = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "bwd4")
        asm.add(0, COMM_STREAM, 2.0, KIND_DP_COMM, "ar_bucket",
                deps=(first,), chain=False)
        asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "bwd3")
        asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "bwd2")
        return asm.finish(num_devices=1)

    def test_comm_overlaps_compute(self):
        """Total = 3s of compute; the 2s All-Reduce hides inside it."""
        result = simulate(self.overlap_graph())
        assert result.iteration_time == pytest.approx(3.0)

    def test_serial_comm_would_be_slower(self):
        """Sanity: had the AR been on the compute stream it would add."""
        asm = GraphAssembler()
        asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "bwd4")
        asm.add(0, COMPUTE_STREAM, 2.0, KIND_DP_COMM, "ar_serial")
        asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "bwd3")
        asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "bwd2")
        result = simulate(asm.finish(num_devices=1))
        assert result.iteration_time == pytest.approx(5.0)


class TestAccounting:
    def test_busy_seconds_by_kind(self):
        asm = GraphAssembler()
        asm.add(0, COMPUTE_STREAM, 2.0, KIND_COMPUTE, "a")
        asm.add(0, COMM_STREAM, 1.0, KIND_DP_COMM, "c", chain=False)
        result = simulate(asm.finish(num_devices=1))
        assert result.busy_seconds(KIND_COMPUTE) == pytest.approx(2.0)
        assert result.busy_seconds(KIND_DP_COMM) == pytest.approx(1.0)
        breakdown = result.breakdown()
        assert breakdown[KIND_COMPUTE] == pytest.approx(2.0)

    def test_idle_fraction(self):
        asm = GraphAssembler()
        a = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a")
        asm.add(1, COMPUTE_STREAM, 3.0, KIND_COMPUTE, "b", deps=(a,),
                chain=False)
        result = simulate(asm.finish(num_devices=2))
        # iteration = 4s; device 0 busy 1s (idle 3/4), device 1 busy 3/4.
        assert compute_idle_fraction(result) == pytest.approx(0.5)

    def test_timeline_events_recorded(self):
        result = simulate(chain_graph([1.0, 2.0]), record_timeline=True)
        assert len(result.events) == 2
        assert result.events[0].finish == pytest.approx(1.0)
        assert result.events[1].start == pytest.approx(1.0)

    def test_chrome_trace_export(self):
        result = simulate(chain_graph([1.0]), record_timeline=True)
        trace = result.to_chrome_trace()
        assert trace[0]["ph"] == "X"
        assert trace[0]["dur"] == pytest.approx(1e6)

    def test_chrome_trace_empty_without_recording(self):
        result = simulate(chain_graph([1.0]))
        assert result.to_chrome_trace() == []


class TestInvariants:
    def test_critical_path_lower_bounds_iteration(self, tiny_model, training):
        from repro.config.parallelism import ParallelismConfig
        from repro.sim.estimator import VTrain
        from repro.config.system import single_node
        vtrain = VTrain(single_node())
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        graph = vtrain.build_graph(tiny_model, plan, training)
        assert critical_path_length(graph) <= simulate(
            graph).iteration_time + 1e-12

    def test_stream_serialisation_holds(self, tiny_model, training):
        from repro.config.parallelism import ParallelismConfig
        from repro.sim.estimator import VTrain
        from repro.config.system import single_node
        vtrain = VTrain(single_node())
        plan = ParallelismConfig(tensor=1, data=2, pipeline=4)
        graph = vtrain.build_graph(tiny_model, plan, training)
        result = simulate(graph, record_timeline=True)
        assert stream_serialisation_check(graph, result)

    def test_serialisation_check_requires_timeline(self):
        graph = chain_graph([1.0])
        result = simulate(graph)
        with pytest.raises(SimulationError):
            stream_serialisation_check(graph, result)

    def test_engine_does_not_mutate_graph(self):
        graph = chain_graph([1.0, 2.0])
        before = [(n.num_parents, tuple(n.children)) for n in graph.nodes]
        simulate(graph)
        simulate(graph)
        after = [(n.num_parents, tuple(n.children)) for n in graph.nodes]
        assert before == after
