"""Unit tests for link models and the Equation-1 All-Reduce formula."""

import pytest

from dataclasses import replace

from repro.config.system import SystemConfig, single_node, multi_node
from repro.errors import ConfigError
from repro.hardware.interconnect import (NVLINK_EFFICIENCY_FLOOR, LinkType,
                                         RingParameters, infiniband_ring,
                                         log2_ceil, nvlink_ring, p2p_time,
                                         ring_hops)


class TestRingParameters:
    def test_equation_1_shape(self):
        """t = S/B * 2(n-1)/n: doubling n from 2 raises transfer toward
        2S/B asymptote."""
        ring = RingParameters(bus_bandwidth=100e9, base_latency=0.0,
                              hop_latency=0.0)
        size = 1 << 30
        t2 = ring.allreduce_time(size, 2)
        t8 = ring.allreduce_time(size, 8)
        assert t2 == pytest.approx(size / 100e9 * 1.0)
        assert t8 == pytest.approx(size / 100e9 * 1.75)

    def test_single_worker_is_free(self):
        ring = RingParameters(100e9, 1e-6, 1e-6)
        assert ring.allreduce_time(1 << 20, 1) == 0.0

    def test_zero_bytes_is_free(self):
        ring = RingParameters(100e9, 1e-6, 1e-6)
        assert ring.allreduce_time(0, 8) == 0.0

    def test_latency_dominates_small_messages(self):
        ring = RingParameters(100e9, 10e-6, 1e-6)
        tiny = ring.allreduce_time(1024, 8)
        assert tiny > 10e-6

    def test_allgather_half_of_allreduce_transfer(self):
        ring = RingParameters(100e9, 0.0, 0.0)
        size = 1 << 30
        assert ring.allgather_time(size, 8) == pytest.approx(
            ring.allreduce_time(size, 8) / 2)

    def test_reduce_scatter_equals_allgather(self):
        ring = RingParameters(100e9, 2e-6, 1e-6)
        assert ring.reduce_scatter_time(1 << 20, 4) == ring.allgather_time(
            1 << 20, 4)

    def test_rejects_bad_group(self):
        ring = RingParameters(100e9, 0.0, 0.0)
        with pytest.raises(ConfigError):
            ring.allreduce_time(1024, 0)


class TestLinkFactories:
    def test_nvlink_8gpu_busbw_in_published_range(self):
        """A100/NVSwitch all-reduce busbw is ~230 GB/s in nccl-tests."""
        ring = nvlink_ring(single_node(), 8)
        assert 200e9 < ring.bus_bandwidth < 260e9

    def test_nvlink_smaller_rings_more_efficient(self):
        sys = single_node()
        assert nvlink_ring(sys, 2).bus_bandwidth > nvlink_ring(
            sys, 8).bus_bandwidth

    def test_infiniband_uses_alpha(self):
        base = multi_node(2)
        ring = infiniband_ring(base)
        assert ring.bus_bandwidth == pytest.approx(100e9)  # 800 Gbps

    def test_nvlink_efficiency_clamped_for_large_domains(self):
        """Regression: the linear overhead term must not degrade without
        bound (it went negative past ~200 GPUs before the clamp)."""
        system = replace(single_node(), num_gpus=256, gpus_per_node=256)
        ring = nvlink_ring(system, 256)
        assert ring.bus_bandwidth == pytest.approx(
            system.gpu.nvlink_bandwidth * NVLINK_EFFICIENCY_FLOOR)
        assert ring.allreduce_time(1 << 30, 256) > 0.0

    def test_nvlink_efficiency_unchanged_below_floor(self):
        """The clamp must not move the profiled 8-GPU operating point."""
        ring = nvlink_ring(single_node(), 8)
        expected = 0.80 - 0.004 * 6
        assert ring.bus_bandwidth == pytest.approx(
            single_node().gpu.nvlink_bandwidth * expected)

    def test_p2p_internode_uses_single_hca(self):
        system = multi_node(2)
        inter = p2p_time(system, 1 << 30, LinkType.INTER_NODE)
        intra = p2p_time(system, 1 << 30, LinkType.INTRA_NODE)
        assert inter > intra  # one HCA << NVLink

    def test_p2p_bandwidth_derived_from_nics_per_node(self):
        """Regression: per-HCA bandwidth is aggregate / nics_per_node,
        not a hard-coded quarter."""
        four = multi_node(2)
        eight = SystemConfig(num_gpus=16, nics_per_node=8)
        size = 1 << 30
        t4 = p2p_time(four, size, LinkType.INTER_NODE)
        t8 = p2p_time(eight, size, LinkType.INTER_NODE)
        assert t4 == pytest.approx(
            size / (four.effective_internode_bandwidth / 4)
            + four.internode_latency)
        assert t8 > t4  # more HCAs, thinner slices of the same aggregate

    def test_p2p_zero_bytes(self):
        assert p2p_time(single_node(), 0, LinkType.INTRA_NODE) == 0.0

    def test_p2p_rejects_negative(self):
        with pytest.raises(ConfigError):
            p2p_time(single_node(), -1, LinkType.INTRA_NODE)


class TestHelpers:
    def test_ring_hops(self):
        assert ring_hops(8) == 14
        assert ring_hops(1) == 0

    def test_log2_ceil(self):
        assert log2_ceil(1) == 0
        assert log2_ceil(5) == 3

    def test_log2_ceil_rejects_zero(self):
        with pytest.raises(ConfigError):
            log2_ceil(0)
