"""Unit tests for the baseline performance models and heuristics."""

import pytest

from repro.baselines.amped import AMPeDModel, CalibrationSample
from repro.baselines.analytical import AnalyticalModel, AnalyticalModelConfig
from repro.baselines.heuristic import (heuristic_plan,
                                       heuristic_tensor_degree,
                                       minimal_model_parallel_footprint)
from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.presets import (MEGATRON_18_4B, MEGATRON_39_1B,
                                  MEGATRON_81_2B, MT_NLG_530B)
from repro.config.system import multi_node, single_node
from repro.errors import ConfigError
from repro.sim.estimator import VTrain
from repro.testbed.emulator import TestbedEmulator


@pytest.fixture
def model():
    return ModelConfig(hidden_size=1024, num_layers=8, seq_length=512,
                       num_heads=16, name="baseline-model")


@pytest.fixture
def training():
    return TrainingConfig(global_batch_size=32)


class TestAnalytical:
    def test_predicts_positive_time(self, model, training):
        analytical = AnalyticalModel(single_node())
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        assert analytical.predict_iteration_time(model, plan, training) > 0

    def test_same_ballpark_as_vtrain(self, model, training):
        """The analytical model is coarser but not absurd: within 2.5x of
        the profiled simulation."""
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        profiled = VTrain(single_node()).predict(
            model, plan, training).iteration_time
        analytical = AnalyticalModel(single_node()).predict_iteration_time(
            model, plan, training)
        assert profiled / 2.5 < analytical < profiled * 2.5

    def test_less_accurate_than_vtrain_on_testbed(self, model, training):
        """Table V's quantitative claim: against measured times, the
        fixed-efficiency analytical model errs more than vTrain."""
        plans = [ParallelismConfig(tensor=t, data=d, pipeline=p,
                                   micro_batch_size=m)
                 for t, d, p, m in ((2, 4, 1, 2), (8, 1, 1, 4), (1, 2, 4, 1),
                                    (4, 2, 1, 1), (2, 2, 2, 2))]
        vtrain = VTrain(single_node())
        analytical = AnalyticalModel(single_node())
        testbed = TestbedEmulator(single_node())
        vtrain_errors, analytical_errors = [], []
        for plan in plans:
            measured = testbed.measure_time(model, plan, training)
            vtrain_errors.append(abs(
                vtrain.predict(model, plan, training).iteration_time
                - measured) / measured)
            analytical_errors.append(abs(
                analytical.predict_iteration_time(model, plan, training)
                - measured) / measured)
        assert (sum(vtrain_errors) / len(plans)
                < sum(analytical_errors) / len(plans))

    def test_efficiency_knob(self, model, training):
        plan = ParallelismConfig(tensor=1, data=8, pipeline=1)
        slow = AnalyticalModel(single_node(), AnalyticalModelConfig(
            compute_efficiency=0.3)).predict_iteration_time(model, plan,
                                                            training)
        fast = AnalyticalModel(single_node(), AnalyticalModelConfig(
            compute_efficiency=0.6)).predict_iteration_time(model, plan,
                                                            training)
        assert slow > fast


class TestAMPeD:
    def _samples(self, model, training):
        testbed = TestbedEmulator(single_node())
        plans = [ParallelismConfig(tensor=t, data=d, pipeline=p,
                                   micro_batch_size=m)
                 for t, d, p, m in ((1, 8, 1, 1), (2, 4, 1, 2), (4, 2, 1, 1),
                                    (8, 1, 1, 4), (1, 4, 2, 2), (2, 2, 2, 1))]
        return [CalibrationSample(model, plan, training,
                                  testbed.measure_time(model, plan, training))
                for plan in plans]

    def test_requires_fit(self, model, training):
        amped = AMPeDModel(single_node())
        plan = ParallelismConfig(tensor=2, data=4, pipeline=1)
        with pytest.raises(ConfigError):
            amped.predict_iteration_time(model, plan, training)

    def test_fit_and_predict(self, model, training):
        amped = AMPeDModel(single_node())
        amped.fit(self._samples(model, training))
        assert amped.is_fitted
        plan = ParallelismConfig(tensor=2, data=4, pipeline=1,
                                 micro_batch_size=2)
        predicted = amped.predict_iteration_time(model, plan, training)
        assert predicted > 0

    def test_calibration_points_fit_well(self, model, training):
        amped = AMPeDModel(single_node())
        samples = self._samples(model, training)
        amped.fit(samples)
        for sample in samples:
            predicted = amped.predict_iteration_time(sample.model,
                                                     sample.plan,
                                                     sample.training)
            assert predicted == pytest.approx(sample.measured_time, rel=0.5)

    def test_too_few_samples_rejected(self, model, training):
        amped = AMPeDModel(single_node())
        with pytest.raises(ConfigError):
            amped.fit(self._samples(model, training)[:2])

    def test_efficiency_clamped(self, model, training):
        amped = AMPeDModel(single_node())
        amped.fit(self._samples(model, training))
        plan = ParallelismConfig(tensor=16, data=1, pipeline=8)
        efficiency = amped.predict_efficiency(
            model.scaled(num_heads=16, num_layers=8), plan, training)
        assert 0.02 <= efficiency <= 0.95


class TestHeuristic:
    def test_tensor_degree_grows_with_model(self):
        assert heuristic_tensor_degree(MEGATRON_18_4B) == 8
        assert heuristic_tensor_degree(MT_NLG_530B) == 8
        tiny = ModelConfig(hidden_size=512, num_layers=4, seq_length=128,
                           num_heads=8)
        assert heuristic_tensor_degree(tiny) <= 2

    def test_heuristic_plan_uses_budget(self, model, training):
        system = single_node()
        plan = heuristic_plan(model, training, 8, system)
        assert plan.total_gpus == 8

    def test_heuristic_plan_fits_memory(self):
        system = multi_node(32)
        training = TrainingConfig(global_batch_size=1024)
        plan = heuristic_plan(MEGATRON_18_4B, training, 256, system)
        from repro.memory.footprint import fits_in_memory
        assert fits_in_memory(MEGATRON_18_4B, plan, training, system)

    def test_minimal_footprint_matches_paper_example(self):
        """Section V-B: the 39.1B model gets 8-way TP x 2-way PP."""
        system = multi_node(128)
        training = TrainingConfig(global_batch_size=1536)
        assert minimal_model_parallel_footprint(MEGATRON_39_1B, training,
                                                system) == (8, 2)

    def test_minimal_footprint_other_models(self):
        system = multi_node(128)
        t, p = minimal_model_parallel_footprint(
            MEGATRON_18_4B, TrainingConfig(global_batch_size=1024), system)
        assert (t, p) == (8, 1)
        t, p = minimal_model_parallel_footprint(
            MEGATRON_81_2B, TrainingConfig(global_batch_size=1792), system)
        assert t == 8 and p >= 2
