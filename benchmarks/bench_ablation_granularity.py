"""Ablation: graph granularity (kernel vs operator vs stage).

The paper replays kernel-granularity task graphs; this reproduction adds
two aggregation levels (DESIGN.md). The ablation quantifies the
accuracy/speed trade-off: kernel and operator granularity agree exactly
(kernels run back-to-back on one stream, so summation is lossless), and
the stage fast path stays within a couple of percent while simulating an
order of magnitude fewer tasks.
"""

import time

from _helpers import emit_table

from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import multi_node
from repro.graph.builder import Granularity
from repro.sim.estimator import VTrain

MODEL = ModelConfig(hidden_size=4096, num_layers=32, seq_length=2048,
                    num_heads=32, name="ablation-7B")
PLAN = ParallelismConfig(tensor=4, data=4, pipeline=4, micro_batch_size=2)
TRAINING = TrainingConfig(global_batch_size=128)


def run_granularity_ablation():
    rows = []
    reference = None
    for granularity in (Granularity.KERNEL, Granularity.OPERATOR,
                        Granularity.STAGE):
        system = multi_node(PLAN.total_gpus // 8)
        vtrain = VTrain(system, granularity=granularity)
        vtrain.predict(MODEL, PLAN, TRAINING)  # warm profiles
        start = time.perf_counter()
        prediction = vtrain.predict(MODEL, PLAN, TRAINING)
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = prediction.iteration_time
        rows.append({"granularity": granularity.value,
                     "tasks": prediction.simulation.num_tasks,
                     "iteration_s": prediction.iteration_time,
                     "vs_kernel_pct":
                         100 * (prediction.iteration_time / reference - 1),
                     "sim_seconds": elapsed})
    return rows


def test_ablation_granularity(benchmark):
    rows = benchmark.pedantic(run_granularity_ablation, rounds=1,
                              iterations=1)
    emit_table("ablation_granularity",
               "Ablation: graph granularity accuracy/speed trade-off", rows)
    by_name = {row["granularity"]: row for row in rows}
    # Kernel and operator granularity agree exactly.
    assert abs(by_name["operator"]["vs_kernel_pct"]) < 0.01
    # Stage granularity stays within a few percent...
    assert abs(by_name["stage"]["vs_kernel_pct"]) < 5.0
    # ...while simulating far fewer tasks, far faster.
    assert by_name["stage"]["tasks"] < by_name["kernel"]["tasks"] / 10
    assert by_name["stage"]["sim_seconds"] < by_name["kernel"]["sim_seconds"]
