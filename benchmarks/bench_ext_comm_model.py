"""Extension: the contention-aware inter-node communication model.

The paper's Section IV closes by attributing vTrain's multi-node error
to the simple latency-bandwidth model — no NCCL launch overheads, no
straggler margins at synchronisation points, no dynamic interference
between data-parallel groups sharing switches — and proposes
incorporating those effects as future work. This bench implements that
proposal (:mod:`repro.profiling.advanced`) and verifies the claim: with
the corrections enabled (including the 30% intra-node interference the
paper itself measured), the multi-node validation error shrinks, and
single-node predictions are unaffected except through the interference
term the paper explicitly flagged.
"""

from _helpers import emit_table

from repro.graph.builder import Granularity
from repro.profiling.advanced import ContentionAwareNcclModel
from repro.sim.estimator import VTrain
from repro.testbed.emulator import TestbedEmulator
from repro.validation.campaigns import multi_node_points
from repro.validation.metrics import accuracy


def run_comm_model_comparison():
    points = multi_node_points()[::4]
    measured = []
    testbeds = {}
    for point in points:
        key = point.num_nodes
        if key not in testbeds:
            testbeds[key] = TestbedEmulator(point.system())
        measured.append(testbeds[key].measure_time(point.model, point.plan,
                                                   point.training))

    def campaign(make_nccl):
        simulators = {}
        predicted = []
        for point in points:
            key = point.num_nodes
            if key not in simulators:
                system = point.system()
                simulators[key] = VTrain(system,
                                         granularity=Granularity.OPERATOR,
                                         check_memory_feasibility=False,
                                         nccl=make_nccl(system))
            predicted.append(simulators[key].predict(
                point.model, point.plan, point.training).iteration_time)
        return accuracy(measured, predicted)

    basic = campaign(lambda system: None)
    advanced = campaign(lambda system: ContentionAwareNcclModel(
        system, interference=1.30, straggler_slack=0.04))
    return basic, advanced


def test_ext_contention_aware_comm_model(benchmark):
    basic, advanced = benchmark.pedantic(run_comm_model_comparison,
                                         rounds=1, iterations=1)
    emit_table("ext_comm_model",
               "Extension: contention-aware inter-node comm model",
               [{"model": "basic Eq.1 (paper)", "mape_pct": basic.mape,
                 "bias_pct": basic.mean_signed_error,
                 "r_squared": basic.r_squared},
                {"model": "contention-aware (future work, implemented)",
                 "mape_pct": advanced.mape,
                 "bias_pct": advanced.mean_signed_error,
                 "r_squared": advanced.r_squared}],
               notes="the paper: 'simulation errors ... can be alleviated "
                     "by incorporating the dynamic nature of inter-node "
                     "communication into our analytical model'")
    # The future-work model must reduce both error and bias magnitude.
    assert advanced.mape < basic.mape
    assert abs(advanced.mean_signed_error) < abs(basic.mean_signed_error)
    benchmark.extra_info["basic_mape"] = basic.mape
    benchmark.extra_info["advanced_mape"] = advanced.mape
