"""Figure 11 + Table I: cost-effective MT-NLG training plans.

Figure 11 re-plots the t=8 slice of the design space as (iteration time,
GPU utilization) and contrasts MT-NLG's three published plans with the
three vTrain-uncovered plans. Table I turns those six plans into days,
dollars-per-hour and total training cost. The headline: (8, 12, 21) uses
10% fewer GPUs than (8, 8, 35), runs 6.3% longer, and saves ~$0.39M
(9.01 -> 8.62 million dollars).
"""

from _helpers import emit_table

from repro.config.presets import (MT_NLG_530B, MT_NLG_BASELINE_PLANS,
                                  MT_NLG_TRAINING, MT_NLG_VTRAIN_PLANS)
from repro.config.system import multi_node
from repro.graph.builder import Granularity
from repro.sim.estimator import VTrain

PAPER_TABLE_I = {
    (8, 8, 35): 9.01, (8, 10, 35): 9.24, (8, 12, 35): 9.46,
    (8, 12, 21): 8.62, (8, 16, 21): 8.88, (8, 20, 21): 9.13,
}


def run_table1():
    rows = []
    for source, plans in (("MT-NLG", MT_NLG_BASELINE_PLANS),
                          ("vTrain", MT_NLG_VTRAIN_PLANS)):
        for plan in plans:
            system = multi_node(plan.total_gpus // 8)
            vtrain = VTrain(system, granularity=Granularity.STAGE)
            estimate = vtrain.estimate_training(MT_NLG_530B, plan,
                                                MT_NLG_TRAINING)
            rows.append({"source": source, "t,d,p": str(plan.way),
                         "iteration_s": estimate.iteration_time,
                         "days": estimate.total_days,
                         "utilization_pct":
                             100 * estimate.gpu_compute_utilization,
                         "gpus": estimate.num_gpus,
                         "dollars_per_hour": estimate.dollars_per_hour,
                         "total_millions": estimate.dollars_total / 1e6,
                         "paper_millions": PAPER_TABLE_I[plan.way]})
    return rows


def test_table1_and_fig11(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    emit_table("table1_mtnlg", "Table I: MT-NLG plans vs vTrain findings",
               rows)
    by_way = {row["t,d,p"]: row for row in rows}

    # Headline comparison: (8,12,21) vs (8,8,35).
    base = by_way["(8, 8, 35)"]
    ours = by_way["(8, 12, 21)"]
    assert ours["gpus"] == 2016 and base["gpus"] == 2240  # 10% fewer GPUs
    assert ours["utilization_pct"] > base["utilization_pct"]
    assert ours["total_millions"] < base["total_millions"]
    savings = base["total_millions"] - ours["total_millions"]
    assert 0.15 < savings < 0.6  # paper: $0.39M
    # Longer training by a few percent (paper: +6.3%).
    assert 1.0 < ours["days"] / base["days"] < 1.12

    # Every vTrain row beats its baseline on cost.
    for base_plan, our_plan in zip(MT_NLG_BASELINE_PLANS,
                                   MT_NLG_VTRAIN_PLANS):
        assert (by_way[str(our_plan.way)]["total_millions"]
                < by_way[str(base_plan.way)]["total_millions"])
    # Model accuracy vs the paper's own simulated dollars: within 10%.
    for row in rows:
        assert abs(row["total_millions"] - row["paper_millions"]) \
            / row["paper_millions"] < 0.10
    benchmark.extra_info["savings_millions"] = savings
