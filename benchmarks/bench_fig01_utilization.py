"""Figure 1: GPT-3 (175B) training time and cost vs GPU utilization.

The paper's motivating curve: wall-clock training days on 1,024 A100s as
a function of achieved compute utilization, with the 40% -> 50% gap worth
about 8 days and millions of dollars.
"""

from _helpers import emit_table

from repro.config.presets import GPT3_175B, GPT3_TRAINING
from repro.cost.pricing import DEFAULT_PRICING
from repro.hardware.gpu import A100_80GB
from repro.sim.estimator import (cost_for_utilization,
                                 training_days_for_utilization)

NUM_GPUS = 1024
UTILIZATIONS = [0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70]


def run_figure1() -> list[dict]:
    rows = []
    for utilization in UTILIZATIONS:
        days = training_days_for_utilization(
            GPT3_175B, GPT3_TRAINING.total_tokens, NUM_GPUS, utilization,
            A100_80GB.peak_fp16_flops)
        dollars = cost_for_utilization(
            GPT3_175B, GPT3_TRAINING.total_tokens, NUM_GPUS, utilization,
            A100_80GB.peak_fp16_flops, pricing=DEFAULT_PRICING)
        rows.append({"utilization_pct": 100 * utilization,
                     "training_days": days,
                     "cost_millions": dollars / 1e6})
    return rows


def test_fig01_training_time_vs_utilization(benchmark):
    rows = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    emit_table("fig01_utilization", "Figure 1: GPT-3 175B on 1,024 A100s",
               rows)
    days = {row["utilization_pct"]: row["training_days"] for row in rows}
    # The paper's headline: dropping 50% -> 40% utilization adds ~8 days.
    gap = days[40.0] - days[50.0]
    assert 5.0 < gap < 12.0
    benchmark.extra_info["days_gap_40_to_50"] = gap
