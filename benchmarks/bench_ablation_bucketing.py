"""Ablation: gradient bucketing (Figure 5).

With bucketing, per-bucket All-Reduces overlap the remaining backward
compute; without it, a single terminal All-Reduce is fully exposed. The
bench quantifies the iteration-time cost of disabling bucketing for a
data-parallel-heavy configuration — the behaviour vTrain must model to
match PyTorch DDP (Section III-B).
"""

from _helpers import emit_table

from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import multi_node
from repro.graph.builder import Granularity
from repro.sim.estimator import VTrain

MODEL = ModelConfig(hidden_size=4096, num_layers=24, seq_length=2048,
                    num_heads=32, name="ablation-5B")
TRAINING = TrainingConfig(global_batch_size=64)


def run_bucketing_ablation():
    rows = []
    system = multi_node(4)
    for buckets, enabled in ((1, False), (2, True), (4, True), (8, True)):
        plan = ParallelismConfig(tensor=1, data=32, pipeline=1,
                                 micro_batch_size=2,
                                 gradient_bucketing=enabled,
                                 num_gradient_buckets=buckets)
        vtrain = VTrain(system, granularity=Granularity.OPERATOR)
        prediction = vtrain.predict(MODEL, plan, TRAINING)
        rows.append({"bucketing": "on" if enabled else "off",
                     "buckets": buckets if enabled else 1,
                     "iteration_s": prediction.iteration_time,
                     "utilization_pct":
                         100 * prediction.gpu_compute_utilization})
    return rows


def test_ablation_gradient_bucketing(benchmark):
    rows = benchmark.pedantic(run_bucketing_ablation, rounds=1, iterations=1)
    emit_table("ablation_bucketing",
               "Ablation: gradient bucketing (Figure 5)", rows)
    off = next(r for r in rows if r["bucketing"] == "off")
    best_on = min((r for r in rows if r["bucketing"] == "on"),
                  key=lambda r: r["iteration_s"])
    # Overlap pays: bucketing beats the fully-exposed single All-Reduce.
    assert best_on["iteration_s"] < off["iteration_s"]
    benchmark.extra_info["overlap_gain_pct"] = 100 * (
        1 - best_on["iteration_s"] / off["iteration_s"])
