"""Ablation: GPipe vs 1F1B pipeline scheduling (Figure 7).

Both schedules incur the same ideal bubble; their difference is memory:
GPipe keeps every in-flight micro-batch's activations, 1F1B caps the
residency at the pipeline depth (Section II-B). The bench shows (a)
near-identical iteration time and (b) GPipe's activation footprint
forcing infeasibility at micro-batch counts 1F1B still sustains.
"""

from _helpers import emit_table

from repro.config.model import ModelConfig
from repro.config.parallelism import (ParallelismConfig, PipelineSchedule,
                                      TrainingConfig)
from repro.config.system import multi_node
from repro.errors import InfeasibleConfigError
from repro.graph.builder import Granularity
from repro.memory.footprint import memory_footprint
from repro.sim.estimator import VTrain

MODEL = ModelConfig(hidden_size=6144, num_layers=32, seq_length=2048,
                    num_heads=48, name="ablation-14B")
TRAINING = TrainingConfig(global_batch_size=256)


def run_schedule_ablation():
    rows = []
    system = multi_node(4)
    for schedule in (PipelineSchedule.GPIPE, PipelineSchedule.ONE_F_ONE_B):
        plan = ParallelismConfig(tensor=4, data=1, pipeline=8,
                                 micro_batch_size=1, schedule=schedule)
        vtrain = VTrain(system, granularity=Granularity.STAGE,
                        check_memory_feasibility=False)
        prediction = vtrain.predict(MODEL, plan, TRAINING)
        footprint = memory_footprint(MODEL, plan, TRAINING)
        feasible = True
        try:
            VTrain(system, granularity=Granularity.STAGE).predict(
                MODEL, plan, TRAINING)
        except InfeasibleConfigError:
            feasible = False
        rows.append({"schedule": schedule.value,
                     "iteration_s": prediction.iteration_time,
                     "activation_gib":
                         footprint.activations / float(1 << 30),
                     "fits_80gb": feasible})
    return rows


def test_ablation_pipeline_schedule(benchmark):
    rows = benchmark.pedantic(run_schedule_ablation, rounds=1, iterations=1)
    emit_table("ablation_schedule",
               "Ablation: GPipe vs 1F1B (Figure 7)", rows,
               notes="1F1B trades nothing in time for a large activation-"
                     "memory saving — the PipeDream motivation")
    gpipe = next(r for r in rows if r["schedule"] == "gpipe")
    one_f = next(r for r in rows if r["schedule"] == "1f1b")
    # Same bubble -> nearly identical time.
    assert abs(gpipe["iteration_s"] - one_f["iteration_s"]) \
        / one_f["iteration_s"] < 0.05
    # GPipe's activation residency is dramatically larger (256 vs 8
    # in-flight micro-batches here).
    assert gpipe["activation_gib"] > 8 * one_f["activation_gib"]
    # And it is what breaks feasibility on 80 GB parts.
    assert one_f["fits_80gb"] and not gpipe["fits_80gb"]
