"""Ablation: run-to-run noise magnitude vs measurement spread (Section IV).

The paper treats a real iteration as essentially deterministic, yet its
error analysis names per-kernel jitter as one of the residual sources.
This bench sweeps the emulated testbed's kernel-jitter amplitude and
quantifies how iteration-level spread responds: per-kernel noise is
heavily averaged by the thousands of kernels on the critical path, so
iteration-level variation stays far below the kernel-level amplitude —
the paper's justification for single-iteration measurements.

The sampling runs through ``TestbedEmulator.measure_samples``: all K
perturbed duration vectors of one configuration replay as columns of a
single ``simulate_retimed_batch`` sweep (each column bit-identical to a
scalar measurement, sample 0 to ``measure()`` itself), so the sweep also
exercises the batched measurement path end to end.
"""

import dataclasses
import os
import statistics

from _helpers import emit_table

from repro.sim.estimator import VTrain
from repro.testbed.emulator import TestbedConfig, TestbedEmulator
from repro.validation.campaigns import single_node_points

JITTERS = (0.0, 0.02, 0.05, 0.10)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
NUM_SAMPLES = 8 if QUICK else 16
NUM_POINTS = 3 if QUICK else 6


def _spread_pct(times):
    """Coefficient of variation of one sample campaign, in percent."""
    mean = statistics.fmean(times)
    return 100.0 * statistics.pstdev(times) / mean


def run_noise_sweep():
    stride = 120 // NUM_POINTS
    points = single_node_points(limit=120)[::stride][:NUM_POINTS]
    vtrain = VTrain(points[0].system(), check_memory_feasibility=False)
    rows = []
    for jitter in JITTERS:
        config = dataclasses.replace(TestbedConfig(), kernel_jitter=jitter)
        emulator = TestbedEmulator(points[0].system(), config=config)
        spreads = []
        gaps = []
        for point in points:
            samples = emulator.measure_samples(
                point.model, point.plan, point.training, NUM_SAMPLES
            )
            assert samples[0] == emulator.measure(point.model, point.plan, point.training)
            times = [sample.iteration_time for sample in samples]
            spreads.append(_spread_pct(times))
            predicted = vtrain.predict(point.model, point.plan, point.training).iteration_time
            gaps.append(100.0 * abs(statistics.fmean(times) - predicted) / predicted)
        rows.append(
            {
                "kernel_jitter_pct": 100.0 * jitter,
                "samples": NUM_SAMPLES,
                "iteration_spread_pct": statistics.fmean(spreads),
                "mean_gap_vs_predicted_pct": statistics.fmean(gaps),
            }
        )
    return rows


def test_ablation_noise_sweep(benchmark):
    rows = benchmark.pedantic(run_noise_sweep, rounds=1, iterations=1)
    emit_table(
        "ablation_noise",
        "Ablation: kernel-jitter amplitude vs iteration-level spread",
        rows,
        notes=f"{NUM_SAMPLES} batched samples per point over {NUM_POINTS} "
        "single-node configurations; spread = stdev/mean of the sample "
        "campaign (batched measurement path)",
    )
    spread = {row["kernel_jitter_pct"]: row["iteration_spread_pct"] for row in rows}
    # Kernel jitter drives iteration-level spread: turning the knob up
    # must widen the campaign's sample distribution.
    assert spread[10.0] > spread[0.0]
    # ...but averaging across the critical path keeps the iteration-level
    # spread well under the kernel-level amplitude.
    assert spread[10.0] < 10.0
    # With kernel jitter off, the only run-to-run variation left is the
    # per-iteration overhead draw — the spread collapses to near zero.
    assert spread[0.0] < 1.0


def test_samples_are_deterministic():
    point = single_node_points(limit=1)[0]
    emulator = TestbedEmulator(point.system())
    first = emulator.measure_samples(point.model, point.plan, point.training, 4)
    second = emulator.measure_samples(point.model, point.plan, point.training, 4)
    assert first == second
    assert len({sample.iteration_time for sample in first}) == 4
