"""Collective latency and end-to-end impact across network topologies.

Compares the flat Equation-1 pipe against the rail-optimized and
fat-tree topology models of :mod:`repro.network` on two axes:

* a microbenchmark table — All-Reduce latency over payload sizes and
  group shapes on each fabric, with the auto-selected algorithm — the
  shape to sanity-check against nccl-tests intuition (rail tracks the
  flat aggregate pipe; oversubscribed fat-tree uplinks starve the
  inter-node rings);
* an end-to-end table — predicted MT-NLG iteration time per fabric, the
  what-if the flat model cannot express.

Set ``REPRO_BENCH_QUICK=1`` to shrink both sweeps for CI smoke runs.
"""

import os

from _helpers import emit_table

from repro.config.presets import (MT_NLG_530B, MT_NLG_BASELINE_PLANS,
                                  MT_NLG_TRAINING)
from repro.config.system import multi_node
from repro.graph.builder import Granularity
from repro.hardware.interconnect import LinkType
from repro.network.model import nccl_model_for
from repro.sim.estimator import VTrain

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

MIB = float(1 << 20)
NETWORKS = (("flat", "flat ring (Eq. 1)"), ("rail", None),
            ("fat-tree:4", None), ("fat-tree:8", None))
SIZES = (4 * MIB, 256 * MIB) if QUICK else (1 * MIB, 16 * MIB, 256 * MIB,
                                            1024 * MIB)
GROUPS = ((8, 64),) if QUICK else ((8, 64), (32, 64), (64, 64))
PLAN = MT_NLG_BASELINE_PLANS[0]  # t=8, d=8, p=35 on 2,240 GPUs


def test_collective_latency_across_topologies(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for group_size, num_nodes in GROUPS:
            for size in SIZES:
                row = {"group": group_size, "nodes": num_nodes,
                       "MiB": size / MIB}
                for network, label in NETWORKS:
                    model = nccl_model_for(multi_node(num_nodes,
                                                      network=network))
                    time = model.allreduce_time(size, group_size,
                                                LinkType.INTER_NODE)
                    row[network] = 1e3 * time
                    if label is None:
                        label = model.explain(size, group_size)["algorithm"]
                    row[f"{network} algo"] = label
                rows.append(row)
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "network_collectives",
        "Inter-node All-Reduce latency (ms) by fabric",
        rows,
        notes="rail tracks the flat aggregate pipe (that is Equation 1's "
              "assumption made explicit); fat-tree:8 pays uplink "
              "contention the flat model cannot see.")


def test_mtnlg_iteration_time_across_topologies(benchmark):
    nodes = PLAN.total_gpus // 8
    rows = []

    def sweep():
        rows.clear()
        for network, _ in NETWORKS:
            vtrain = VTrain(multi_node(nodes, network=network),
                            granularity=Granularity.STAGE,
                            check_memory_feasibility=False)
            prediction = vtrain.predict(MT_NLG_530B, PLAN, MT_NLG_TRAINING)
            rows.append({
                "network": network,
                "iteration_s": prediction.iteration_time,
                "util_pct": 100 * prediction.gpu_compute_utilization,
            })
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    baseline = rows[0]["iteration_s"]
    for row in rows:
        row["vs_flat_pct"] = 100 * (row["iteration_s"] / baseline - 1)
    emit_table(
        "network_mtnlg",
        "MT-NLG 530B (t=8, d=8, p=35) iteration time by fabric",
        rows,
        notes="Topology what-if the paper's flat model cannot express: "
              "the same plan on differently shaped clusters.")
