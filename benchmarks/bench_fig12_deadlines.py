"""Figure 12: deadline satisfactory ratio, ElasticFlow vs vTrain-enabled.

Nine arrival traces, replayed at 64 and at 128 jobs on a 1,024-GPU
cluster with the same ElasticFlow scheduling algorithm; only the
throughput profiles differ (DP-only vs vTrain-optimal plans). The shape:
the vTrain system satisfies at least as many deadlines on every trace,
and its average improvement grows with load (paper: 1.09x at 64 jobs,
1.23x at 128 jobs).
"""

import numpy as np
from _helpers import emit_table

from repro.cluster import (ClusterSimulator, ElasticFlowScheduler,
                           deadline_satisfactory_ratio, synthesize_trace)

TOTAL_GPUS = 1024
TRACE_IDS = range(1, 10)


def run_deadline_study(profiles):
    rows = []
    for num_jobs in (64, 128):
        for trace_id in TRACE_IDS:
            jobs = synthesize_trace(trace_id, num_jobs,
                                    profiles["elasticflow"])
            ratios = {}
            for label in ("elasticflow", "vtrain"):
                scheduler = ElasticFlowScheduler(profiles[label], TOTAL_GPUS)
                result = ClusterSimulator(scheduler).run(jobs)
                ratios[label] = deadline_satisfactory_ratio(result)
            rows.append({"jobs": num_jobs, "trace": trace_id,
                         "elasticflow": ratios["elasticflow"],
                         "vtrain": ratios["vtrain"]})
    return rows


def test_fig12_deadline_satisfactory_ratio(benchmark, table_iii_profiles):
    rows = benchmark.pedantic(run_deadline_study,
                              args=(table_iii_profiles,), rounds=1,
                              iterations=1)
    emit_table("fig12_deadlines", "Figure 12: deadline satisfactory ratio",
               rows, notes="paper average improvement: 1.09x (64 jobs), "
                           "1.23x (128 jobs)")
    for num_jobs in (64, 128):
        subset = [row for row in rows if row["jobs"] == num_jobs]
        ef = np.array([row["elasticflow"] for row in subset])
        vt = np.array([row["vtrain"] for row in subset])
        # vTrain satisfies at least as many deadlines on every trace.
        assert np.all(vt >= ef - 1e-9)
        improvement = float(np.mean(vt / ef))
        benchmark.extra_info[f"improvement_{num_jobs}"] = improvement
        assert improvement > 1.0
    # Heavier load widens the gap (the Figure 12 ordering).
    i64 = benchmark.extra_info["improvement_64"]
    i128 = benchmark.extra_info["improvement_128"]
    assert i128 > i64
