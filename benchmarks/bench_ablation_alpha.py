"""Ablation: the bandwidth-effectiveness factor alpha (Section IV).

The paper sweeps alpha from 0.1 to 1.0 and finds prediction error
minimised at alpha = 1.0 — its cluster is a *non-blocking* fat tree, so
the full nominal inter-node bandwidth is achievable and no derating
helps. The same sweep run against a cluster with the dynamic
interference effects the paper's future-work section describes (shared
ToR uplinks, concurrent DP groups) fits alpha < 1: the knob absorbs
unmodelled communication slowdowns.

This bench runs both regimes on our testbed emulator:

* ``contention-free`` — interference effects disabled: the paper's
  setting; the sweep must bottom out at alpha ~ 1.0.
* ``contended`` — the default emulated cluster; the fitted alpha drops
  below 1.0, quantifying how much effective bandwidth the interference
  costs.
"""

import dataclasses

import numpy as np
from _helpers import emit_table

from repro.graph.builder import Granularity
from repro.sim.engine import simulate_retimed, simulate_retimed_batch
from repro.sim.estimator import VTrain
from repro.testbed.emulator import TestbedConfig, TestbedEmulator
from repro.validation.campaigns import multi_node_points
from repro.validation.metrics import mape

ALPHAS = (0.2, 0.4, 0.6, 0.8, 1.0)


def _sweep(points, testbed_config):
    measured = []
    testbeds = {}
    for point in points:
        key = point.num_nodes
        if key not in testbeds:
            testbeds[key] = TestbedEmulator(point.system(),
                                            config=testbed_config)
        measured.append(testbeds[key].measure_time(point.model, point.plan,
                                                   point.training))
    # Alpha only rescales communication durations — all five deratings
    # of one point share one compiled structure, so each point is a
    # natural batch: five duration columns, one vectorized replay
    # (bit-identical per column to the scalar predicts this sweep ran
    # before the batch engine existed).
    simulators = {}
    predicted = {alpha: [] for alpha in ALPHAS}
    for point in points:
        prepared_by_alpha = []
        for alpha in ALPHAS:
            key = (point.num_nodes, alpha)
            if key not in simulators:
                system = dataclasses.replace(point.system(),
                                             bandwidth_effectiveness=alpha)
                simulators[key] = VTrain(system,
                                         granularity=Granularity.OPERATOR,
                                         check_memory_feasibility=False)
            prepared_by_alpha.append(
                simulators[key].prepare(point.model, point.plan,
                                        point.training))
        groups = {}
        for alpha, prepared in zip(ALPHAS, prepared_by_alpha):
            groups.setdefault(id(prepared.structure),
                              []).append((alpha, prepared))
        for group in groups.values():
            if len(group) == 1:
                alpha, prepared = group[0]
                predicted[alpha].append(simulate_retimed(
                    prepared.structure, prepared.durations).iteration_time)
                continue
            structure = group[0][1].structure
            matrix = np.stack([prepared.durations for _, prepared in group],
                              axis=1)
            batch = simulate_retimed_batch(structure, matrix)
            for (alpha, _), makespan in zip(group,
                                            batch.iteration_times()):
                predicted[alpha].append(makespan)
    return {alpha: mape(measured, predicted[alpha]) for alpha in ALPHAS}


def run_alpha_sweep():
    points = [p for p in multi_node_points() if p.plan.data >= 8][::6]
    rows = []
    fitted = {}
    for regime, config in (("contention-free",
                            TestbedConfig().without_interference()),
                           ("contended", TestbedConfig())):
        errors = _sweep(points, config)
        fitted[regime] = min(errors, key=errors.get)
        for alpha in ALPHAS:
            rows.append({"regime": regime, "alpha": alpha,
                         "mape_pct": errors[alpha]})
    return rows, fitted


def test_ablation_alpha_sweep(benchmark):
    rows, fitted = benchmark.pedantic(run_alpha_sweep, rounds=1, iterations=1)
    emit_table("ablation_alpha",
               "Ablation: bandwidth-effectiveness factor sweep (Section IV)",
               rows,
               notes=f"fitted alpha: {fitted}; the paper's non-blocking "
                     "fat tree corresponds to the contention-free regime "
                     "(alpha = 1.0)")
    # Paper regime: nothing beats the full nominal bandwidth.
    assert fitted["contention-free"] >= 0.8
    clean = {row["alpha"]: row["mape_pct"] for row in rows
             if row["regime"] == "contention-free"}
    assert clean[1.0] < clean[0.2]
    # Interference shifts the fitted alpha below 1.0 — the knob absorbs
    # unmodelled comm slowdowns, as the paper's future work anticipates.
    assert fitted["contended"] < fitted["contention-free"]
    benchmark.extra_info["fitted"] = {k: float(v) for k, v in fitted.items()}
