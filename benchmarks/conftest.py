"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def table_iii_profiles():
    """ElasticFlow and vTrain throughput profiles for the Table III
    models, shared across the three cluster benches (building them once
    per session keeps the cluster benches fast)."""
    from repro.cluster.throughput import (elasticflow_throughput_profile,
                                          vtrain_throughput_profile)
    from repro.config.presets import TABLE_III_MODELS
    elasticflow = {spec.model.name: elasticflow_throughput_profile(spec)
                   for spec in TABLE_III_MODELS}
    vtrain = {spec.model.name: vtrain_throughput_profile(spec)
              for spec in TABLE_III_MODELS}
    return {"elasticflow": elasticflow, "vtrain": vtrain}
