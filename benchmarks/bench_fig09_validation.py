"""Figure 9: predicted vs measured single-iteration training time.

(a) single-node validation — the paper collected 1,440 points on one
    8-A100 p4d node and reports MAPE 8.37%, R^2 0.9896;
(b) multi-node validation — 116 points on up to 512 A100s, MAPE 14.73%,
    R^2 0.9887.

Our "measured" side is the testbed emulator (DESIGN.md, Substitutions).
The shape to reproduce: strong linear fit on both, multi-node error
roughly double the single-node error, and systematic underestimation.
"""

import os

from _helpers import emit_table

from repro.validation import (multi_node_points, run_campaign,
                              single_node_points)

#: Set REPRO_BENCH_FULL=1 to run every campaign point; the default
#: subsamples 4x to keep the bench under a minute.
FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def run_single_node():
    points = single_node_points()
    if not FULL:
        points = points[::4]
    return points, run_campaign(points)


def run_multi_node():
    points = multi_node_points()
    if not FULL:
        points = points[::2]
    return points, run_campaign(points)


def test_fig09a_single_node_validation(benchmark):
    points, result = benchmark.pedantic(run_single_node, rounds=1,
                                        iterations=1)
    summary = result.accuracy
    emit_table("fig09a_single_node", "Figure 9(a): single-node validation",
               [{"points": summary.num_points,
                 "mape_pct": summary.mape,
                 "r_squared": summary.r_squared,
                 "bias_pct": summary.mean_signed_error,
                 "paper_mape_pct": 8.37,
                 "paper_r_squared": 0.9896}])
    assert summary.mape < 12.0
    assert summary.r_squared > 0.97
    benchmark.extra_info["mape"] = summary.mape
    benchmark.extra_info["r2"] = summary.r_squared


def test_fig09b_multi_node_validation(benchmark):
    points, result = benchmark.pedantic(run_multi_node, rounds=1,
                                        iterations=1)
    summary = result.accuracy
    emit_table("fig09b_multi_node", "Figure 9(b): multi-node validation",
               [{"points": summary.num_points,
                 "mape_pct": summary.mape,
                 "r_squared": summary.r_squared,
                 "bias_pct": summary.mean_signed_error,
                 "paper_mape_pct": 14.73,
                 "paper_r_squared": 0.9887}])
    assert 8.0 < summary.mape < 22.0
    assert summary.r_squared > 0.93
    # The paper's ordering: multi-node error exceeds single-node error.
    benchmark.extra_info["mape"] = summary.mape
    benchmark.extra_info["r2"] = summary.r_squared
