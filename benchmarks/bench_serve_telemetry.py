"""Serving-tier telemetry: scrape liveness, stitched traces, and the
obs-disabled overhead gate for served predicts.

The telemetry PR's contract is that the whole observability surface —
trace propagation, the time-series sampler, the SLO tracker, the
Prometheus scrape listener — stays off the prediction hot path. This
bench exercises the surface end-to-end and gates the cost:

* ``test_serve_telemetry_and_overhead_gate`` starts an in-process
  daemon with the HTTP scrape sidecar and a fast sampler, drives a
  concurrent warm workload, and *mid-run*:

  - scrapes ``GET /metrics`` and asserts a well-formed Prometheus text
    exposition naming the serving instruments and SLO gauges;
  - requests one traced predict, stitches the client and daemon span
    streams into a Chrome trace, and validates it against
    ``schemas/chrome_trace.schema.json`` (flow events included);
  - writes the daemon's time-series ring to
    ``benchmarks/results/OBS_serve_timeseries.json`` and validates it
    against ``schemas/obs_timeseries.schema.json``.

  Two gates, both against the committed baseline (``entries[0]`` of
  ``benchmarks/results/BENCH_serve_telemetry.json``):

  - **Regression tracking** — the warm served round trip, normalized
    by a direct in-process ``service.predict`` of the same cached
    request measured in the same run. Loopback RPC timings are noisy
    (scheduler wakeups dominate the µs scale), so the headroom is
    generous; this catches gross serving-layer regressions.
  - **Obs-disabled overhead (3%)** — the telemetry added to the
    request path lives in ``dispatch`` (trace binding, envelope
    trace-ID extraction, the access-log check, metric observation),
    so the gated metric is warm in-process ``dispatch`` over warm
    in-process ``predict`` of the same cached request: both sides
    share the dominant code path, which cancels machine speed *and*
    scheduler noise (measured cross-run spread ~2%). With
    observability disabled (the default) this ratio must stay within
    **3%** of the committed baseline — request-scoped telemetry can
    never silently tax serving when nothing asks for it.

Set ``REPRO_BENCH_QUICK=1`` in CI smoke/perf lanes for fewer rounds.
"""

import json
import os
import statistics
import threading
import time
import urllib.request
from pathlib import Path

from _helpers import emit_table

from repro import obs
from repro.config.description import InputDescription
from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import single_node
from repro.graph.builder import clear_structure_cache
from repro.obs.schema import validate
from repro.obs.stitch import stitch_trace
from repro.serve import (MetricsHTTPServer, PredictionService, ServeClient,
                         ServeDaemon, protocol)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS = Path(__file__).parent / "results"
BENCH_FILE = RESULTS / "BENCH_serve_telemetry.json"
TIMESERIES_FILE = RESULTS / "OBS_serve_timeseries.json"
TRACE_FILE = RESULTS / "OBS_serve_trace.json"
BENCH_SCHEMA = 1

#: Allowed growth of the served/in-process latency ratio vs the
#: committed baseline (catches a gross serving-layer regression
#: regardless of telemetry state; very generous because loopback RPC
#: minima swing ~2x with scheduler state — the precise bound is the
#: in-process dispatch/predict gate below).
REGRESSION_HEADROOM = 2.0
#: The telemetry bound: with observability disabled (the default),
#: the in-process dispatch/predict ratio must stay within 3% of the
#: committed baseline — trace plumbing, the access log hook, the
#: sampler, and the SLO tracker must be free when nothing asks for
#: them.
OBS_DISABLED_HEADROOM = 1.03
#: Keep the perf trajectory bounded; entries[0] is the baseline.
TRAJECTORY_LIMIT = 50

DRIVERS = 3 if QUICK else 4
REQUESTS_PER_DRIVER = 15 if QUICK else 40
WARM_ROUNDS = 60 if QUICK else 120
SAMPLE_INTERVAL_S = 0.1
#: The gated dispatch/predict ratio is deliberately measured the same
#: way in quick and full lanes: its stability is what makes the 3%
#: bound honest, so the rounds are not subsampled. Deep minima pin the
#: two floors well enough that the cross-run spread of the median
#: ratio stays under 1% (measured); ~0.5s total.
GATE_WARMUP = 300
GATE_ROUNDS = 1000
GATE_REPEATS = 3


def _descriptions() -> list[InputDescription]:
    """A few distinct tiny feasible plans (distinct cache keys), plus
    one reserved for the traced predict so it goes through the
    batcher rather than the cache-hit path."""
    model = ModelConfig(hidden_size=512, num_layers=4, seq_length=128,
                        num_heads=8, vocab_size=32_000, name="tiny")
    system = single_node()
    training = TrainingConfig(global_batch_size=16)
    plans = [(2, 2, 2, 2), (1, 4, 2, 1), (4, 2, 1, 2), (2, 4, 1, 1)]
    return [InputDescription(
                model=model, system=system,
                plan=ParallelismConfig(tensor=tensor, data=data,
                                       pipeline=pipeline,
                                       micro_batch_size=micro),
                training=training)
            for tensor, data, pipeline, micro in plans]


def _drive(address: tuple, descriptions: list[InputDescription]) -> None:
    """Concurrent warm traffic (populates rates, quantiles, the ring)."""
    host, port = address
    errors: list[BaseException] = []

    def worker(offset: int) -> None:
        try:
            with ServeClient.connect(host, port, timeout=10.0) as client:
                for i in range(REQUESTS_PER_DRIVER):
                    description = descriptions[(offset + i)
                                               % len(descriptions)]
                    client.predict(description=description.to_dict(),
                                   granularity="stage")
        except BaseException as exc:  # noqa: BLE001 - asserted below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(DRIVERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors[0]


def _scrape(address: tuple, path: str) -> tuple[str, str]:
    """GET one scrape endpoint; returns (body, content-type)."""
    host, port = address
    with urllib.request.urlopen(f"http://{host}:{port}{path}",
                                timeout=10.0) as response:
        assert response.status == 200
        return (response.read().decode("utf-8"),
                response.headers.get("Content-Type", ""))


def _schema(name: str) -> dict:
    return json.loads((REPO_ROOT / "schemas" / name).read_text())


def _dispatch_over_predict(service: PredictionService,
                           warm_params: dict) -> float:
    """The obs-disabled gated metric: warm in-process ``dispatch`` over
    warm in-process ``predict`` of the same cached request.

    ``dispatch`` carries the whole per-request telemetry surface
    (trace binding, envelope trace-ID extraction, the access-log
    check, metric observation) on top of the shared ``predict`` path,
    so a hot-path telemetry regression inflates only the numerator —
    while machine speed and scheduler noise cancel. Median of
    ``GATE_REPEATS`` min-of-rounds ratios keeps the cross-run spread
    around 2%, inside the 3% headroom.
    """
    request = protocol.request(1, "predict", warm_params)

    def no_notify(_message: dict) -> None:  # pragma: no cover - no dse here
        raise AssertionError("no notification expected")

    def one_dispatch() -> None:
        # A fresh envelope each round, as the wire would deliver it.
        service.dispatch(json.loads(json.dumps(request)), no_notify)

    for _ in range(GATE_WARMUP):
        one_dispatch()
        service.predict(dict(warm_params))
    ratios = []
    for _ in range(GATE_REPEATS):
        dispatch_s = predict_s = float("inf")
        for _ in range(GATE_ROUNDS):
            tick = time.perf_counter()
            one_dispatch()
            dispatch_s = min(dispatch_s, time.perf_counter() - tick)
            tick = time.perf_counter()
            service.predict(dict(warm_params))
            predict_s = min(predict_s, time.perf_counter() - tick)
        ratios.append(dispatch_s / predict_s)
    return statistics.median(ratios)


def _fresh_store():
    return {"schema": BENCH_SCHEMA, "benchmark": "serve_telemetry",
            "gates": {"regression_headroom": REGRESSION_HEADROOM,
                      "obs_disabled_headroom": OBS_DISABLED_HEADROOM},
            "entries": []}


def _load_store():
    if not BENCH_FILE.exists():
        return _fresh_store()
    payload = json.loads(BENCH_FILE.read_text())
    if payload.get("schema") != BENCH_SCHEMA:
        return _fresh_store()
    return payload


def _baseline():
    entries = _load_store().get("entries", [])
    return entries[0] if entries else None


def _record(entry: dict) -> None:
    """Append a passing entry, keeping ``entries[0]`` (the committed
    baseline) when truncating."""
    store = _load_store()
    tail = store["entries"][1:] + [entry]
    store["entries"] = store["entries"][:1] + tail[-(TRAJECTORY_LIMIT - 1):]
    RESULTS.mkdir(exist_ok=True)
    BENCH_FILE.write_text(json.dumps(store, indent=1) + "\n")


def test_serve_telemetry_and_overhead_gate():
    clear_structure_cache()
    obs.reset()

    descriptions = _descriptions()
    traced_description, workload = descriptions[0], descriptions[1:]
    service = PredictionService(sample_interval_s=SAMPLE_INTERVAL_S)
    daemon = ServeDaemon(service, port=0)
    daemon.start()
    scraper = MetricsHTTPServer(service, port=0)
    scraper.start()
    try:
        address = daemon.address

        # -- Warm traffic, then a mid-run Prometheus scrape. -------------
        _drive(address, workload)
        time.sleep(3 * SAMPLE_INTERVAL_S)  # let the ring accumulate
        text, content_type = _scrape(scraper.address, "/metrics")
        assert content_type.startswith("text/plain")
        assert "repro_serve_requests " in text
        assert "repro_serve_predict_s{quantile=\"0.99\"}" in text
        assert "repro_serve_slo_burn_rate " in text
        health, _ = _scrape(scraper.address, "/healthz")
        assert json.loads(health)["ok"] is True

        # -- One traced predict, stitched and schema-validated. ----------
        trace_id = obs.new_trace_id()
        with ServeClient.connect(*address, timeout=10.0) as client:
            payload = client.predict(
                description=traced_description.to_dict(),
                granularity="stage", trace=True, trace_id=trace_id)
            served = payload["served"]
            stitched = stitch_trace(
                trace_id=trace_id,
                client_spans=client.last_call_spans,
                server_spans=served["spans"],
                client_pid=os.getpid(), server_pid=served["pid"])
        validate(stitched, _schema("chrome_trace.schema.json"))
        span_names = {s["name"] for s in served["spans"]}
        assert "serve.batch.queued" in span_names, span_names
        flow_phases = [e["ph"] for e in stitched["traceEvents"]
                       if e["ph"] in ("s", "f")]
        assert flow_phases.count("s") == 2 and flow_phases.count("f") == 2

        # -- Warm served round trip vs direct in-process predict. --------
        warm_params = {"description": workload[0].to_dict(),
                       "granularity": "stage"}
        with ServeClient.connect(*address, timeout=10.0) as client:
            served_warm_s = float("inf")
            for _ in range(WARM_ROUNDS):
                tick = time.perf_counter()
                client.predict(**warm_params)
                served_warm_s = min(served_warm_s,
                                    time.perf_counter() - tick)
            stats = client.stats()
        inprocess_warm_s = float("inf")
        for _ in range(WARM_ROUNDS):
            tick = time.perf_counter()
            service.predict(dict(warm_params))
            inprocess_warm_s = min(inprocess_warm_s,
                                   time.perf_counter() - tick)

        # -- Time-series artifact. ---------------------------------------
        ring = service.timeseries.payload()
        validate(ring, _schema("obs_timeseries.schema.json"))
        assert len(ring["samples"]) >= 2
        RESULTS.mkdir(exist_ok=True)
        TIMESERIES_FILE.write_text(json.dumps(ring, indent=1) + "\n")
        TRACE_FILE.write_text(json.dumps(stitched, indent=1) + "\n")
    finally:
        scraper.stop()
        daemon.stop()
        service.close()

    # -- The obs-disabled gated metric, on a quiet service. --------------
    # Measured after the daemon, the scrape sidecar, and the sampler
    # thread are gone, so nothing wakes up mid-round; the process-wide
    # structure cache keeps the request warm.
    quiet = PredictionService(sample_interval_s=0.0)
    try:
        warm_params = {"description": workload[0].to_dict(),
                       "granularity": "stage"}
        dispatch_over_predict = _dispatch_over_predict(quiet, warm_params)
    finally:
        quiet.close()

    ratio = served_warm_s / inprocess_warm_s
    entry = {
        "quick": QUICK,
        "obs_enabled": obs.enabled(),
        "served_warm_s": round(served_warm_s, 6),
        "inprocess_warm_s": round(inprocess_warm_s, 6),
        "served_over_inprocess": round(ratio, 4),
        "dispatch_over_predict": round(dispatch_over_predict, 4),
        "served_p99_s": round(stats["latency"]["predict_s"]["p99"], 6),
        "scrape_bytes": len(text.encode("utf-8")),
        "stitched_events": len(stitched["traceEvents"]),
    }

    baseline = _baseline()
    emit_table(
        "serve_telemetry",
        "Serving telemetry: scrape + stitched trace + overhead gate",
        [entry | {"baseline_ratio":
                  baseline["served_over_inprocess"] if baseline
                  else entry["served_over_inprocess"]}],
        notes="served = warm predict round trip over loopback TCP; "
              "in-process = the same cached predict called directly on "
              "the service; dispatch_over_predict is the obs-disabled "
              "3% gate (both sides share the dominant code path, so "
              "machine speed and scheduler noise cancel)")

    if baseline is not None:
        limit = baseline["served_over_inprocess"] * REGRESSION_HEADROOM
        assert ratio <= limit, (
            f"served-predict overhead regressed: served/in-process "
            f"{ratio:.3f} exceeds committed baseline "
            f"{baseline['served_over_inprocess']} by more than "
            f"{REGRESSION_HEADROOM}x")
        if not obs.enabled():
            obs_limit = (baseline["dispatch_over_predict"]
                         * OBS_DISABLED_HEADROOM)
            assert dispatch_over_predict <= obs_limit, (
                f"disabled telemetry is taxing the request path: "
                f"dispatch/predict {dispatch_over_predict:.4f} exceeds "
                f"committed baseline "
                f"{baseline['dispatch_over_predict']} by more than "
                f"{OBS_DISABLED_HEADROOM}x — request-scoped telemetry "
                f"must be free when off")

    # Record only passing runs.
    _record(entry)
    obs.reset()
