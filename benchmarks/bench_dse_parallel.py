"""Sweep-engine speed: serial vs parallel vs warm-cache exploration.

The paper's headline is sweeping the full MT-NLG design space "in under
200 seconds"; plan evaluations are independent, so the parallel engine
should approach linear speedup with workers, and a warm
:class:`PredictionCache` should answer a repeated sweep without running
the simulator at all. This bench measures all three regimes on a
mid-size model sweep and checks the determinism contract (parallel
results bit-identical to serial).

Set ``REPRO_BENCH_QUICK=1`` to shrink the swept space for CI smoke runs.
"""

import os
import time

from _helpers import emit_table

from repro.config.presets import MEGATRON_7_5B
from repro.config.parallelism import TrainingConfig
from repro.dse.cache import PredictionCache
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.parallel import ParallelExplorer
from repro.dse.space import SearchSpace
from repro.graph.builder import structure_cache_stats

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

TRAINING = TrainingConfig(global_batch_size=128)
SPACE = (SearchSpace(max_tensor=8, max_data=8, max_pipeline=6,
                     micro_batch_sizes=(1, 2))
         if QUICK else
         SearchSpace(max_tensor=16, max_data=16, max_pipeline=12,
                     micro_batch_sizes=(1, 2, 4)))
MAX_GPUS = 64 if QUICK else 256
WORKERS = min(4, os.cpu_count() or 1)


def test_parallel_sweep_matches_serial_and_cache_skips_work(benchmark):
    serial = DesignSpaceExplorer(MEGATRON_7_5B, TRAINING)
    start = time.perf_counter()
    serial_result = serial.explore(max_gpus=MAX_GPUS, space=SPACE)
    serial_s = time.perf_counter() - start

    cache = PredictionCache()
    engine = ParallelExplorer(MEGATRON_7_5B, TRAINING, workers=WORKERS,
                              cache=cache)
    start = time.perf_counter()
    parallel_result = engine.explore(max_gpus=MAX_GPUS, space=SPACE)
    parallel_s = time.perf_counter() - start
    assert parallel_result.points == serial_result.points

    warm = ParallelExplorer(MEGATRON_7_5B, TRAINING, workers=WORKERS,
                            cache=cache)
    warm_result = benchmark.pedantic(
        lambda: warm.explore(max_gpus=MAX_GPUS, space=SPACE),
        rounds=1, iterations=1)
    assert warm_result.points == serial_result.points
    assert cache.hits >= len(serial_result.points)

    structure_stats = structure_cache_stats()
    emit_table("dse_parallel", "Sweep engine: serial vs parallel vs cache",
               [{"plans": len(serial_result.points),
                 "workers": WORKERS,
                 "serial_s": serial_s,
                 "parallel_s": parallel_s,
                 "speedup": serial_s / parallel_s if parallel_s else 0.0,
                 "cache_hits": cache.hits,
                 "structure_reuse": structure_stats["hits"],
                 "structures_built": structure_stats["misses"]}],
               notes="warm-cache sweep time is the benchmarked quantity; "
                     "it runs zero simulations. structure_reuse counts "
                     "plans in this process that re-timed an "
                     "already-compiled graph topology instead of "
                     "rebuilding it")
    benchmark.extra_info["plans"] = len(serial_result.points)
    benchmark.extra_info["workers"] = WORKERS
