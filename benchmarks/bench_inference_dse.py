"""Serving DSE: the TP x PP sweep and the warm decode-predict gate.

The workload abstraction's perf story, measured on the GPT-3 175B
preset:

* ``test_inference_dse_sweep_writes_store`` runs the serving
  design-space sweep (``repro dse --workload inference``'s engine) over
  TP x PP x replica plans, checks the vLLM-style trade-off shows up —
  at matched GPU counts the TP-heavy plan wins time-per-output-token
  while the replica-heavy plan wins tokens/s — and snapshots the
  Pareto frontier over (tokens/s, cost per million output tokens) into
  ``benchmarks/results/BENCH_inference_dse.json``.

* ``test_warm_decode_predict_latency_gate`` measures a warm
  ``predict_inference`` (both phase structures already in the
  process-wide structure cache, so the call is two duration refills
  plus two compiled replays) against a cold one that compiles both
  phase graphs from scratch. It asserts the warm path keeps a >= 2x
  advantage, appends the ratio to the gated trajectory in the same
  store, and fails if warm/cold regressed more than 25 % against the
  committed baseline (``entries[0]``). The gated metric is a
  same-process ratio, insensitive to absolute machine speed.

Set ``REPRO_BENCH_QUICK=1`` for the CI perf lane (smaller sweep, fewer
timing rounds; the model stays GPT-3-sized so the gate measures the
real workload).
"""

import json
import os
import time
from pathlib import Path

from _helpers import emit_table

from repro.config.parallelism import ParallelismConfig
from repro.config.presets import GPT3_175B
from repro.config.system import multi_node
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.space import SearchSpace
from repro.graph.builder import Granularity, clear_structure_cache
from repro.sim.estimator import VTrain
from repro.workload import InferenceWorkload

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
BENCH_FILE = Path(__file__).parent / "results" / "BENCH_inference_dse.json"
BENCH_SCHEMA = 1
#: Allowed regression vs the committed baseline's warm/cold ratio.
REGRESSION_HEADROOM = 1.25
#: Minimum speedup of a warm (structure-cached) predict_inference over
#: a cold one that compiles both phase graphs.
MIN_WARM_SPEEDUP = 2.0
#: Keep the gated trajectory bounded.
TRAJECTORY_LIMIT = 50

WORKLOAD = InferenceWorkload(batch_size=16, prompt_len=512, gen_len=128)
#: Warm-gate plan: TP across one node, two pipeline stages (16 GPUs).
GATE_PLAN = ParallelismConfig(tensor=8, data=1, pipeline=2,
                              micro_batch_size=16)


def _load_store():
    if not BENCH_FILE.exists():
        return {"benchmark": "inference_dse", "schema": BENCH_SCHEMA,
                "sweep": {}, "gates": {}}
    payload = json.loads(BENCH_FILE.read_text())
    if payload.get("schema") != BENCH_SCHEMA:
        return {"benchmark": "inference_dse", "schema": BENCH_SCHEMA,
                "sweep": {}, "gates": {}}
    payload.setdefault("sweep", {})
    payload.setdefault("gates", {})
    return payload


def _save_store(store) -> None:
    BENCH_FILE.parent.mkdir(exist_ok=True)
    BENCH_FILE.write_text(json.dumps(store, indent=1) + "\n")


def _record_gate(gate_name, defaults, entry) -> None:
    """Append a passing entry, always keeping ``entries[0]`` — the
    committed baseline the regression gate compares against."""
    store = _load_store()
    section = store["gates"].setdefault(gate_name,
                                        defaults | {"entries": []})
    tail = section["entries"][1:] + [entry]
    section["entries"] = (section["entries"][:1]
                          + tail[-(TRAJECTORY_LIMIT - 1):])
    _save_store(store)


def _gate_baseline(gate_name):
    section = _load_store()["gates"].get(gate_name)
    if section is None or not section["entries"]:
        return None
    return section["entries"][0]


def test_inference_dse_sweep_writes_store():
    """TP x PP serving sweep on GPT-3; snapshot the Pareto frontier."""
    max_gpus = 16 if QUICK else 32
    space = SearchSpace(max_tensor=8, max_data=2 if QUICK else 4,
                        max_pipeline=8)
    explorer = DesignSpaceExplorer(GPT3_175B, None, workload=WORKLOAD)
    result = explorer.explore(space=space, max_gpus=max_gpus)
    assert result.num_feasible > 0

    # The vLLM trade-off at matched GPU counts: among equal-size
    # feasible plans, the lowest-TPOT plan is at least as TP-heavy as
    # the highest-throughput plan, which is at least as replica-heavy.
    by_size: dict[int, list] = {}
    for point in result.feasible_points:
        by_size.setdefault(point.num_gpus, []).append(point)
    checked = 0
    for points in by_size.values():
        ways = {point.plan.way for point in points}
        if len(ways) < 2:
            continue
        fastest = min(points, key=lambda p: p.tpot_s)
        fattest = max(points, key=lambda p: p.tokens_per_s)
        assert fastest.plan.tensor >= fattest.plan.tensor
        assert fattest.plan.data >= fastest.plan.data
        checked += 1
    assert checked > 0

    frontier = result.serving_pareto_frontier()
    assert frontier
    pareto_rows = [{
        "tensor": point.plan.tensor,
        "data": point.plan.data,
        "pipeline": point.plan.pipeline,
        "micro_batch": point.plan.micro_batch_size,
        "num_gpus": point.num_gpus,
        "ttft_s": round(point.ttft_s, 6),
        "tpot_s": round(point.tpot_s, 6),
        "tokens_per_s": round(point.tokens_per_s, 3),
        "cost_per_million_tokens_usd": round(
            point.cost_per_million_tokens(), 4),
    } for point in frontier]
    emit_table("inference_dse_pareto",
               "Serving DSE: Pareto frontier (tokens/s vs $/Mtok)",
               pareto_rows,
               notes="GPT-3 175B, batch=16 prompt=512 gen=128; raising "
                     "TP buys TPOT at a worse cost rate, replicas buy "
                     "tokens/s at an unchanged rate")

    store = _load_store()
    store["sweep"] = {
        "quick": QUICK,
        "model": GPT3_175B.name,
        "batch_size": WORKLOAD.batch_size,
        "prompt_len": WORKLOAD.prompt_len,
        "gen_len": WORKLOAD.gen_len,
        "max_gpus": max_gpus,
        "plans": len(result.points),
        "feasible": result.num_feasible,
        "pareto": pareto_rows,
    }
    _save_store(store)


def test_warm_decode_predict_latency_gate():
    """Warm predict_inference (structure-cache hit) vs cold compile."""
    rounds = 3 if QUICK else 5
    system = multi_node(GATE_PLAN.total_gpus // 8)
    vtrain = VTrain(system, granularity=Granularity.OPERATOR)

    clear_structure_cache()
    cold_s = _timed(lambda: vtrain.predict_inference(GPT3_175B, GATE_PLAN,
                                                     WORKLOAD))
    prediction = vtrain.predict_inference(GPT3_175B, GATE_PLAN, WORKLOAD)
    warm_s = min(_timed(lambda: vtrain.predict_inference(
        GPT3_175B, GATE_PLAN, WORKLOAD)) for _ in range(rounds))

    speedup = cold_s / warm_s
    ratio = warm_s / cold_s
    entry = {
        "quick": QUICK,
        "tasks": prediction.decode_simulation.num_tasks,
        "cold_predict_s": round(cold_s, 6),
        "warm_predict_s": round(warm_s, 6),
        "speedup": round(speedup, 3),
        "warm_over_cold": round(ratio, 6),
    }

    baseline = _gate_baseline("warm_decode")
    emit_table("inference_dse_warm",
               "Warm decode predict: structure cache vs phase compile",
               [entry | {"baseline_ratio":
                         baseline["warm_over_cold"] if baseline
                         else entry["warm_over_cold"]}],
               notes="warm = KV memory check + two duration refills + "
                     "two compiled replays on the cached prefill/decode "
                     "structures; cold compiles both phase graphs")

    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm predict_inference only {speedup:.2f}x faster than a cold "
        f"compile (need >= {MIN_WARM_SPEEDUP}x)")
    if baseline is not None:
        limit = baseline["warm_over_cold"] * REGRESSION_HEADROOM
        assert ratio <= limit, (
            f"warm decode-predict latency regressed: warm/cold "
            f"{ratio:.4f} exceeds committed baseline "
            f"{baseline['warm_over_cold']} by more than "
            f"{REGRESSION_HEADROOM}x")

    # Record only passing runs.
    _record_gate("warm_decode",
                 {"gated_metric": "warm_over_cold",
                  "min_speedup": MIN_WARM_SPEEDUP,
                  "regression_headroom": REGRESSION_HEADROOM},
                 entry)


def _timed(thunk):
    tick = time.perf_counter()
    thunk()
    return time.perf_counter() - tick
