"""Figure 14: makespan for batch-submitted workloads.

Five synthetic workloads of 16-72 jobs, all submitted at time zero.
Shape: the vTrain-enabled system never lengthens the makespan, with
reductions up to ~23% as the job count (and hence contention for the
1,024 GPUs) grows.
"""

from _helpers import emit_table

from repro.cluster import (ClusterSimulator, ElasticFlowScheduler,
                           makespan, makespan_trace)

TOTAL_GPUS = 1024
JOB_COUNTS = (16, 32, 48, 64, 72)


def run_makespan_study(profiles):
    rows = []
    for num_jobs in JOB_COUNTS:
        jobs = makespan_trace(num_jobs, profiles["elasticflow"])
        spans = {}
        for label in ("elasticflow", "vtrain"):
            scheduler = ElasticFlowScheduler(profiles[label], TOTAL_GPUS)
            spans[label] = makespan(ClusterSimulator(scheduler).run(jobs))
        rows.append({"jobs": num_jobs,
                     "elasticflow_h": spans["elasticflow"] / 3600,
                     "vtrain_h": spans["vtrain"] / 3600,
                     "normalized": spans["vtrain"] / spans["elasticflow"]})
    return rows


def test_fig14_makespan(benchmark, table_iii_profiles):
    rows = benchmark.pedantic(run_makespan_study,
                              args=(table_iii_profiles,), rounds=1,
                              iterations=1)
    emit_table("fig14_makespan", "Figure 14: normalized makespan",
               rows, notes="paper: up to 23.03% reduction")
    normalized = [row["normalized"] for row in rows]
    assert all(value <= 1.0 + 1e-9 for value in normalized)
    best = 1.0 - min(normalized)
    benchmark.extra_info["best_reduction_pct"] = 100 * best
    assert 0.05 < best < 0.35
