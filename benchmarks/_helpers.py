"""Result-table emission shared by all benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
emits its rows both to stdout (run pytest with ``-s`` to watch) and to
``benchmarks/results/<name>.txt`` so results survive the run. Absolute
numbers come from our analytical A100 substrate, so the *shape* — who
wins, by roughly what factor, where crossovers fall — is the comparison
target, not digit-for-digit equality (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit_table(name: str, title: str, rows: list[dict], *,
               notes: str = "") -> None:
    """Print a result table and persist it under benchmarks/results/."""
    lines = [f"== {title} =="]
    if rows:
        headers = list(rows[0].keys())
        lines.append(" | ".join(headers))
        lines.append("-+-".join("-" * len(h) for h in headers))
        for row in rows:
            lines.append(" | ".join(_fmt(row.get(h)) for h in headers))
    if notes:
        lines.append(notes)
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
