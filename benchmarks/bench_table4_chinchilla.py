"""Table IV: compute-optimal Chinchilla points under effective FLOPS.

Budget: 3,360 A100s for 30 days. The naive point (100% utility) is a
145.6B model on 2.9T tokens — which, once vTrain simulates the best
achievable plan, actually needs ~3x the budgeted wall-clock time. The
realistic compute-optimal model is roughly half the naive size (paper:
76.04B trained on 1,521B tokens within 30 days).
"""

from _helpers import emit_table

from repro.config.system import multi_node
from repro.hardware.gpu import A100_80GB
from repro.scaling.chinchilla import (compute_budget_flops,
                                      compute_optimal_search,
                                      naive_chinchilla_point)

NUM_GPUS = 3360
BUDGET_DAYS = 30.0


def run_table4():
    system = multi_node(NUM_GPUS // 8)
    rows, best = compute_optimal_search(NUM_GPUS, BUDGET_DAYS, system)
    return rows, best


def test_table4_chinchilla_points(benchmark):
    rows, best = benchmark.pedantic(run_table4, rounds=1, iterations=1)

    budget = compute_budget_flops(NUM_GPUS, BUDGET_DAYS,
                                  A100_80GB.peak_fp16_flops)
    naive_params, naive_tokens = naive_chinchilla_point(budget)

    table = [dict(row.as_row(), utilization_pct=round(100 * row.utilization,
                                                      1))
             for row in rows]
    emit_table("table4_chinchilla", "Table IV: compute-optimal points "
               f"({NUM_GPUS} GPUs, {BUDGET_DAYS:.0f} days)", table,
               notes=f"naive point: {naive_params / 1e9:.1f}B params / "
                     f"{naive_tokens / 1e9:.0f}B tokens; realistic pick: "
                     f"{best.parameters_billion:.1f}B")

    # The naive 145.6B point blows through the 30-day budget by >2x.
    naive_row = next(row for row in rows if row.model.hidden_size == 12288
                     and row.model.num_layers == 80)
    assert naive_row.parameters_billion > 140
    assert naive_row.training_days > 2 * BUDGET_DAYS
    # Days decrease monotonically with model size.
    by_size = sorted(rows, key=lambda r: r.model.num_parameters())
    days = [row.training_days for row in by_size]
    assert days == sorted(days)
    # The realistic point is much smaller than the naive one and fits.
    assert best is not None
    assert best.training_days <= BUDGET_DAYS
    assert best.parameters_billion < 0.7 * naive_params / 1e9
    # Tokens follow the 20x rule everywhere.
    for row in rows:
        assert abs(row.tokens - 20.0 * row.model.num_parameters()) < 1e-3
    benchmark.extra_info["realistic_params_b"] = best.parameters_billion
    benchmark.extra_info["naive_days"] = naive_row.training_days
