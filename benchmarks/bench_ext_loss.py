"""Extension: expected-loss column for the Table IV search.

Case study #3 argues the compute-optimal choice maximises "algorithmic
performance" within the effective budget. Attaching the Chinchilla
parametric loss model (Hoffmann et al., Approach 3) to each Table IV
candidate makes that argument checkable: among candidates trained to
their 20-tokens-per-parameter point, expected loss decreases
monotonically with model size, so picking the largest *feasible* model
(the paper's rule) is exactly loss-minimisation under the wall-clock
constraint. It also quantifies the paper's Section II-A under-training
remark for MT-NLG.
"""

from _helpers import emit_table

from repro.config.presets import MT_NLG_530B
from repro.scaling.chinchilla import (TABLE_IV_ARCHITECTURES,
                                      TOKENS_PER_PARAMETER, candidate_model)
from repro.scaling.loss import expected_loss, undertraining_penalty


def run_loss_table():
    rows = []
    for hidden, layers in TABLE_IV_ARCHITECTURES:
        model = candidate_model(hidden, layers)
        params = model.num_parameters()
        tokens = TOKENS_PER_PARAMETER * params
        rows.append({"h": hidden, "L": layers,
                     "params_b": params / 1e9,
                     "tokens_b": tokens / 1e9,
                     "expected_loss": expected_loss(params, tokens)})
    return rows


def test_ext_expected_loss_ordering(benchmark):
    rows = benchmark.pedantic(run_loss_table, rounds=1, iterations=1)
    mtnlg_penalty = undertraining_penalty(
        MT_NLG_530B.num_parameters(), 270e9)
    emit_table("ext_loss", "Extension: expected loss per Table IV candidate",
               rows, notes=f"MT-NLG under-training penalty (530B on 270B "
                           f"tokens): +{mtnlg_penalty:.3f} loss")
    ordered = sorted(rows, key=lambda r: r["params_b"])
    losses = [row["expected_loss"] for row in ordered]
    # Larger compute-optimal models -> strictly lower expected loss,
    # which is why Table IV picks the largest model inside the budget.
    assert losses == sorted(losses, reverse=True)
    # The paper's under-training example: MT-NLG's 270B tokens leave
    # substantial loss on the table relative to its Chinchilla point.
    assert mtnlg_penalty > 0.05
    benchmark.extra_info["mtnlg_penalty"] = mtnlg_penalty
