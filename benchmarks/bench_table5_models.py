"""Table V: vTrain vs other performance-model classes.

The paper's comparison table is qualitative; this bench makes it
quantitative on our testbed: the profiling-driven simulator (vTrain), a
Calculon-style fixed-efficiency analytical model, and an AMPeD-style
fitted-efficiency model all predict the same held-out single-node
configurations, and their MAPE against measured times is compared. The
expected shape: vTrain < AMPeD-style < Calculon-style, with vTrain's
per-prediction latency still in the interactive range.
"""

import time

from _helpers import emit_table

from repro.baselines.amped import AMPeDModel, CalibrationSample
from repro.baselines.analytical import AnalyticalModel
from repro.config.system import single_node
from repro.graph.builder import Granularity
from repro.sim.estimator import VTrain
from repro.testbed.emulator import TestbedEmulator
from repro.validation.campaigns import single_node_points
from repro.validation.metrics import mape


def run_table5():
    system = single_node()
    points = single_node_points()[::12]  # ~100 held-out configs
    calibration_points = single_node_points()[5::97][:8]  # disjoint slice

    testbed = TestbedEmulator(system)
    vtrain = VTrain(system, granularity=Granularity.OPERATOR,
                    check_memory_feasibility=False)
    analytical = AnalyticalModel(system)
    amped = AMPeDModel(system)
    amped.fit([CalibrationSample(p.model, p.plan, p.training,
                                 testbed.measure_time(p.model, p.plan,
                                                      p.training))
               for p in calibration_points])

    measured, vtrain_pred, analytical_pred, amped_pred = [], [], [], []
    timings = {"vTrain": 0.0, "Calculon-style": 0.0, "AMPeD-style": 0.0}
    for point in points:
        measured.append(testbed.measure_time(point.model, point.plan,
                                             point.training))
        start = time.perf_counter()
        vtrain_pred.append(vtrain.predict(point.model, point.plan,
                                          point.training).iteration_time)
        timings["vTrain"] += time.perf_counter() - start
        start = time.perf_counter()
        analytical_pred.append(analytical.predict_iteration_time(
            point.model, point.plan, point.training))
        timings["Calculon-style"] += time.perf_counter() - start
        start = time.perf_counter()
        amped_pred.append(amped.predict_iteration_time(
            point.model, point.plan, point.training))
        timings["AMPeD-style"] += time.perf_counter() - start

    rows = []
    for label, predictions in (("vTrain", vtrain_pred),
                               ("AMPeD-style", amped_pred),
                               ("Calculon-style", analytical_pred)):
        rows.append({"model": label,
                     "validation_points": len(points),
                     "mape_pct": mape(measured, predictions),
                     "seconds_per_prediction":
                         timings[label] / len(points)})
    return rows


def test_table5_model_comparison(benchmark):
    rows = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    emit_table("table5_models",
               "Table V: performance-model comparison on our testbed",
               rows, notes="paper reports vTrain 8.37% single-node MAPE vs "
                           "~12% for AMPeD and 3.65% (8 points) for "
                           "Calculon")
    errors = {row["model"]: row["mape_pct"] for row in rows}
    # The profiling-driven simulator beats both baseline classes.
    assert errors["vTrain"] < errors["AMPeD-style"]
    assert errors["vTrain"] < errors["Calculon-style"]
    # Still fast: well under a second per configuration (Section III-F).
    speed = {row["model"]: row["seconds_per_prediction"] for row in rows}
    assert speed["vTrain"] < 1.0
    benchmark.extra_info.update(errors)
