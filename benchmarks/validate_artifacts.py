#!/usr/bin/env python
"""Validate CI artifacts against the checked-in JSON schemas.

Usage::

    PYTHONPATH=src python benchmarks/validate_artifacts.py FILE [FILE ...]

Each file is matched to a schema by shape — a ``traceEvents`` key means
a Chrome trace (``schemas/chrome_trace.schema.json``); a
``kind: obs_timeseries`` marker means the serving time-series ring
(``schemas/obs_timeseries.schema.json``); a
``benchmark: service_throughput`` marker means the serving-tier store
(``schemas/bench_service_throughput.schema.json``); a
``benchmark: serve_telemetry`` marker means the telemetry-overhead
store (``schemas/bench_serve_telemetry.schema.json``); a
``benchmark: inference_dse`` marker means the serving-DSE store
(``schemas/bench_inference_dse.schema.json``); a
``schema``/``benchmarks`` pair means the perf-trajectory store
(``schemas/bench_sim_speed.schema.json``) — and validated with
:mod:`repro.obs.schema`. Exits non-zero on the first invalid file, so
the CI bench lane fails when an export or the trajectory store drifts
from its published format.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.schema import SchemaError, validate  # noqa: E402

SCHEMA_DIR = REPO_ROOT / "schemas"


def schema_for(payload: object) -> Path:
    """The schema file matching a payload's shape."""
    if isinstance(payload, dict):
        if "traceEvents" in payload:
            return SCHEMA_DIR / "chrome_trace.schema.json"
        if payload.get("kind") == "obs_timeseries":
            return SCHEMA_DIR / "obs_timeseries.schema.json"
        if payload.get("benchmark") == "service_throughput":
            return SCHEMA_DIR / "bench_service_throughput.schema.json"
        if payload.get("benchmark") == "serve_telemetry":
            return SCHEMA_DIR / "bench_serve_telemetry.schema.json"
        if payload.get("benchmark") == "inference_dse":
            return SCHEMA_DIR / "bench_inference_dse.schema.json"
        if "schema" in payload and "benchmarks" in payload:
            return SCHEMA_DIR / "bench_sim_speed.schema.json"
    raise SchemaError("payload matches no known artifact shape "
                      "(expected a Chrome trace or a BENCH store)")


def validate_file(path: Path) -> str:
    """Validate one artifact; returns the schema name it matched."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    schema_path = schema_for(payload)
    schema = json.loads(schema_path.read_text(encoding="utf-8"))
    validate(payload, schema)
    return schema_path.name


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    for name in argv:
        path = Path(name)
        try:
            schema_name = validate_file(path)
        except (OSError, json.JSONDecodeError, SchemaError) as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            return 1
        print(f"ok   {path} ({schema_name})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
