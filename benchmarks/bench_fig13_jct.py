"""Figure 13: average job completion time on deadline-free traces.

Nine 32-job traces without deadlines (ElasticFlow terminates deadline
missers, which would distort JCT, so the paper evaluates JCT deadline-
free). Shape: vTrain reduces average JCT on every trace, ~15% on
average, and is never worse.
"""

import numpy as np
from _helpers import emit_table

from repro.cluster import (ClusterSimulator, ElasticFlowScheduler,
                           average_jct, synthesize_trace)

TOTAL_GPUS = 1024
NUM_JOBS = 32


def run_jct_study(profiles):
    rows = []
    for trace_id in range(1, 10):
        jobs = synthesize_trace(trace_id, NUM_JOBS, profiles["elasticflow"],
                                with_deadlines=False)
        jcts = {}
        for label in ("elasticflow", "vtrain"):
            scheduler = ElasticFlowScheduler(profiles[label], TOTAL_GPUS)
            jcts[label] = average_jct(ClusterSimulator(scheduler).run(jobs))
        rows.append({"trace": trace_id,
                     "elasticflow_jct_h": jcts["elasticflow"] / 3600,
                     "vtrain_jct_h": jcts["vtrain"] / 3600,
                     "normalized": jcts["vtrain"] / jcts["elasticflow"]})
    return rows


def test_fig13_job_completion_time(benchmark, table_iii_profiles):
    rows = benchmark.pedantic(run_jct_study, args=(table_iii_profiles,),
                              rounds=1, iterations=1)
    emit_table("fig13_jct", "Figure 13: normalized average JCT (32 jobs)",
               rows, notes="paper: 15.21% average reduction, never worse")
    normalized = np.array([row["normalized"] for row in rows])
    # Never worse than ElasticFlow, on any trace.
    assert np.all(normalized <= 1.0 + 1e-9)
    reduction = float(1.0 - normalized.mean())
    benchmark.extra_info["avg_reduction_pct"] = 100 * reduction
    # Paper: 15.21% average reduction; accept a generous band.
    assert 0.05 < reduction < 0.30
