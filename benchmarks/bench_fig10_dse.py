"""Figure 10: full design-space exploration for MT-NLG 530B.

Sweeps (t, d, p)-way 3D parallelism over the paper's grid (t up to 16,
d up to 32, p up to 105) and reports the two heatmap metrics: (a)
single-iteration training time and (b) GPU compute utilization. The
expected shape: more GPUs -> faster iterations, but with collapsing
utilization at the extreme corner (the paper calls out (16, 16, 105)
averaging ~17% utilization — 10x the baseline's GPUs for worse cost
efficiency).

Set ``REPRO_BENCH_QUICK=1`` (the CI smoke lane) to sweep a subsampled
grid that still contains the paper's baseline (8, 8, 35) and the extreme
corner (16, 16, 105), so the shape checks run in seconds.
"""

import os

from _helpers import emit_table

from repro.config.presets import MT_NLG_530B, MT_NLG_TRAINING
from repro.config.parallelism import ParallelismConfig
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.space import GridAxes

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Subsampled grid for the CI smoke lane: keeps the baseline-class plans
#: and the extreme corner, drops the interior.
QUICK_AXES = GridAxes(tensor=(8, 16), pipeline=(21, 35, 105),
                      data=(1, 2, 8, 16))


def run_dse():
    axes = QUICK_AXES if QUICK else GridAxes()
    explorer = DesignSpaceExplorer(MT_NLG_530B, MT_NLG_TRAINING)
    plans = []
    for t in axes.tensor:
        for p in axes.pipeline:
            for d in axes.data:
                if MT_NLG_TRAINING.global_batch_size % d:
                    continue
                plans.append(ParallelismConfig(tensor=t, data=d, pipeline=p,
                                               micro_batch_size=1))
    return explorer.explore(plans=plans)


def test_fig10_design_space_heatmaps(benchmark):
    result = benchmark.pedantic(run_dse, rounds=1, iterations=1)
    iteration_grid = result.heatmap("iteration_time")
    utilization_grid = result.heatmap("utilization")

    rows = []
    for way in sorted(iteration_grid):
        rows.append({"t": way[0], "d": way[1], "p": way[2],
                     "gpus": way[0] * way[1] * way[2],
                     "iteration_s": iteration_grid[way],
                     "utilization_pct": 100 * utilization_grid[way]})
    emit_table("fig10_dse", "Figure 10: MT-NLG (t,d,p) design space",
               rows, notes=f"{result.num_feasible} feasible / "
                           f"{len(result.points)} evaluated"
                           f"{' (quick grid)' if QUICK else ''}")

    # Shape checks. (a) The extreme corner is fastest...
    fastest = result.best_by_iteration_time()
    assert fastest.num_gpus > 10_000
    # ...but its utilization collapses (paper: ~17% at (16,16,105)).
    corner = [p for p in result.feasible_points
              if p.plan.way == (16, 16, 105)]
    if corner:
        assert corner[0].utilization < 0.30
    # (b) Baseline-class plans sit in the 40%+ utilization band.
    baseline = [p for p in result.feasible_points
                if p.plan.way == (8, 8, 35)]
    assert baseline and baseline[0].utilization > 0.38
    benchmark.extra_info["feasible_points"] = result.num_feasible
