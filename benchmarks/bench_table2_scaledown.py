"""Table II: scaled-down MT-NLG validation on 64/256/512 GPU systems.

For each of the three Megatron scale-down models, the paper compares the
plan published in Megatron-LM ([40]) against the plan vTrain's search
uncovered, evaluating both with the simulator ("Predicted") and on the
real cluster ("Measured" — our testbed emulator). The shape: the vTrain
plan wins on both columns at every scale, by single-digit-to-low-teens
percentages.
"""

from _helpers import emit_table

from repro.config.parallelism import TrainingConfig
from repro.config.presets import TABLE_II_ROWS
from repro.config.system import multi_node
from repro.graph.builder import Granularity
from repro.sim.estimator import VTrain
from repro.testbed.emulator import TestbedEmulator

PAPER = {  # (predicted megatron, predicted ours, measured megatron, measured ours)
    64: (2.919, 2.746, 3.938, 3.567),
    256: (7.533, 7.259, 9.928, 9.604),
    512: (13.859, 12.226, 14.757, 13.876),
}


def run_table2():
    rows = []
    for row in TABLE_II_ROWS:
        system = multi_node(row.num_gpus // 8)
        training = TrainingConfig(global_batch_size=row.global_batch_size)
        vtrain = VTrain(system, granularity=Granularity.OPERATOR,
                        check_memory_feasibility=False)
        testbed = TestbedEmulator(system)
        for label, plan in (("[40]", row.megatron_plan),
                            ("Ours", row.vtrain_plan)):
            predicted = vtrain.predict(row.model, plan,
                                       training).iteration_time
            measured = testbed.measure_time(row.model, plan, training)
            rows.append({
                "params_b": round(row.model.parameters_billion, 1),
                "gpus": row.num_gpus, "source": label,
                "t,d,p,m": f"({plan.tensor}, {plan.data}, {plan.pipeline}, "
                           f"{plan.micro_batch_size})",
                "predicted_s": predicted,
                "measured_s": measured,
            })
    return rows


def test_table2_scaledown_validation(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    emit_table("table2_scaledown",
               "Table II: predicted vs measured, Megatron plans vs ours",
               rows)
    by_key = {(row["gpus"], row["source"]): row for row in rows}
    for gpus in (64, 256, 512):
        megatron = by_key[(gpus, "[40]")]
        ours = by_key[(gpus, "Ours")]
        # vTrain's plan wins on both predicted and measured time.
        assert ours["predicted_s"] < megatron["predicted_s"]
        assert ours["measured_s"] < megatron["measured_s"]
        # Reduction magnitude in the paper's 3-12% band (give slack).
        reduction = 1 - ours["measured_s"] / megatron["measured_s"]
        assert 0.0 < reduction < 0.30
        # Prediction underestimates measurement (profiled-in-isolation).
        assert ours["predicted_s"] < ours["measured_s"]
    benchmark.extra_info["rows"] = len(rows)
