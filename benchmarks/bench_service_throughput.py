"""Serving-tier throughput: the ``repro serve`` daemon vs one-shot CLI.

The daemon exists to amortise everything a one-shot ``repro predict``
pays on every invocation — interpreter start, profile warmup, graph
construction — across requests, and to stay fast *under concurrency*
via in-flight dedup, micro-batching, and the shared prediction cache.
This bench measures and gates exactly that:

* ``test_service_throughput_and_gates`` starts an in-process daemon,
  drives N concurrent TCP clients over a mixed plan workload, and
  reports req/s plus the daemon's own p50/p99 latency quantiles (from
  the ``serve.*`` instruments on the :mod:`repro.obs` registry, read
  through the ``stats`` endpoint — the same numbers operators see).
  Gates:

  - **dedup correctness** — a burst of identical concurrent predicts
    from distinct connections runs *exactly one* simulation;
  - **warm speedup** — a served warm predict beats a cold one-shot CLI
    invocation of the same prediction by >= 10x;
  - **throughput floor** — the concurrent warm phase sustains a modest
    absolute req/s floor (loopback TCP + cache hits; generous against
    CI machine variance);
  - **regression** — the warm speedup must stay within headroom of the
    committed baseline (``entries[0]`` in the trajectory store).

Measurements append to ``benchmarks/results/BENCH_service_throughput
.json`` (schema: ``schemas/bench_service_throughput.schema.json``,
checked by ``benchmarks/validate_artifacts.py``). Set
``REPRO_BENCH_QUICK=1`` in CI smoke/perf lanes for fewer clients and
rounds.
"""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

from _helpers import emit_table

from repro import obs
from repro.config.description import InputDescription
from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import single_node
from repro.graph.builder import clear_structure_cache
from repro.serve import PredictionService, ServeClient, ServeDaemon

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = Path(__file__).parent / "results" / "BENCH_service_throughput.json"
BENCH_SCHEMA = 1

#: A served warm predict must beat a cold one-shot CLI invocation of
#: the same prediction by at least this factor (the PR's acceptance
#: bar; in practice the gap is orders of magnitude).
MIN_WARM_SPEEDUP = 10.0
#: Absolute floor on concurrent warm throughput — loopback TCP round
#: trips answered from the prediction cache. Deliberately far below
#: what any machine measures, so the gate catches a serialisation bug
#: (e.g. the daemon accidentally handling connections sequentially
#: against a slow path), not CI noise.
MIN_WARM_REQ_PER_S = 25.0
#: Allowed shrink of the warm speedup vs the committed baseline.
#: Generous because the cold side is a subprocess measurement.
REGRESSION_HEADROOM = 2.0
#: Keep the perf trajectory bounded; entries[0] is the baseline.
TRAJECTORY_LIMIT = 50

#: Cold/warm comparison workload: one preset prediction the CLI can
#: run in a single shot.
PRESET = "megatron-1.7b"

CLIENTS = 4 if QUICK else 8
REQUESTS_PER_CLIENT = 25 if QUICK else 50
COLD_ROUNDS = 1 if QUICK else 2
WARM_ROUNDS = 20 if QUICK else 50
DEDUP_BURST = 8


def _tiny_workload() -> list[dict]:
    """A mixed bag of distinct feasible plans on one node (distinct
    fingerprints, so the throughput phase exercises compute, dedup,
    batching, and cache-serve paths rather than one hot key)."""
    model = ModelConfig(hidden_size=512, num_layers=4, seq_length=128,
                        num_heads=8, vocab_size=32_000, name="tiny")
    system = single_node()
    training = TrainingConfig(global_batch_size=16)
    plans = [(2, 2, 2, 2), (1, 4, 2, 1), (4, 2, 1, 2), (2, 4, 1, 1),
             (1, 2, 4, 2), (8, 1, 1, 1), (1, 8, 1, 2), (4, 1, 2, 1)]
    requests = []
    for tensor, data, pipeline, micro in plans:
        description = InputDescription(
            model=model, system=system,
            plan=ParallelismConfig(tensor=tensor, data=data,
                                   pipeline=pipeline,
                                   micro_batch_size=micro),
            training=training)
        requests.append({"description": description.to_dict(),
                         "granularity": "stage"})
    return requests


def _cold_predict_s() -> float:
    """Wall time of one cold one-shot CLI prediction (interpreter
    start + profile warmup + graph build + replay — everything the
    daemon amortises)."""
    env = os.environ.get("PYTHONPATH", "")
    src = str(REPO_ROOT / "src")
    child_env = dict(os.environ,
                     PYTHONPATH=f"{src}{os.pathsep}{env}" if env else src)
    best = float("inf")
    for _ in range(COLD_ROUNDS):
        tick = time.perf_counter()
        result = subprocess.run(
            [sys.executable, "-m", "repro", "predict", "--preset", PRESET,
             "--granularity", "stage"],
            capture_output=True, text=True, cwd=REPO_ROOT, env=child_env)
        elapsed = time.perf_counter() - tick
        assert result.returncode == 0, result.stderr
        best = min(best, elapsed)
    return best


def _drive_clients(address: tuple, requests: list[dict]) -> float:
    """N concurrent clients each issue the workload round-robin;
    returns the wall time of the whole phase."""
    host, port = address
    barrier = threading.Barrier(CLIENTS + 1)
    errors: list[BaseException] = []

    def worker(offset: int) -> None:
        try:
            with ServeClient.connect(host, port, timeout=10.0) as client:
                barrier.wait()
                for i in range(REQUESTS_PER_CLIENT):
                    params = requests[(offset + i) % len(requests)]
                    client.predict(**{"description": params["description"],
                                      "granularity": params["granularity"]})
        except BaseException as exc:  # noqa: BLE001 - asserted below
            errors.append(exc)
            barrier.abort()

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(CLIENTS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    tick = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - tick
    assert not errors, errors[0]
    return elapsed


def _dedup_burst(address: tuple, request: dict) -> list[dict]:
    """A burst of identical concurrent predicts from distinct
    connections; returns every client's response payload."""
    host, port = address
    results: list[dict] = [None] * DEDUP_BURST
    barrier = threading.Barrier(DEDUP_BURST)
    errors: list[BaseException] = []

    def worker(slot: int) -> None:
        try:
            with ServeClient.connect(host, port, timeout=10.0) as client:
                barrier.wait()
                results[slot] = client.predict(
                    description=request["description"],
                    granularity=request["granularity"])
        except BaseException as exc:  # noqa: BLE001 - asserted below
            errors.append(exc)
            barrier.abort()

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(DEDUP_BURST)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors[0]
    return results


def _fresh_store():
    return {"schema": BENCH_SCHEMA, "benchmark": "service_throughput",
            "gates": {"min_warm_speedup": MIN_WARM_SPEEDUP,
                      "min_warm_req_per_s": MIN_WARM_REQ_PER_S,
                      "regression_headroom": REGRESSION_HEADROOM},
            "entries": []}


def _load_store():
    if not BENCH_FILE.exists():
        return _fresh_store()
    payload = json.loads(BENCH_FILE.read_text())
    if payload.get("schema") != BENCH_SCHEMA:
        return _fresh_store()
    return payload


def _baseline():
    entries = _load_store().get("entries", [])
    return entries[0] if entries else None


def _record(entry: dict) -> None:
    """Append a passing entry, keeping ``entries[0]`` (the committed
    baseline) when truncating."""
    store = _load_store()
    tail = store["entries"][1:] + [entry]
    store["entries"] = store["entries"][:1] + tail[-(TRAJECTORY_LIMIT - 1):]
    BENCH_FILE.parent.mkdir(exist_ok=True)
    BENCH_FILE.write_text(json.dumps(store, indent=1) + "\n")


def test_service_throughput_and_gates():
    clear_structure_cache()
    obs.reset()

    # -- Cold: what every one-shot CLI invocation pays. ------------------
    cold_s = _cold_predict_s()

    service = PredictionService()
    daemon = ServeDaemon(service, port=0)
    daemon.start()
    try:
        address = daemon.address
        workload = _tiny_workload()

        # -- Dedup correctness gate. -------------------------------------
        burst = _dedup_burst(address, workload[0])
        simulations = sum(v.num_predictions
                          for v in service._vtrains.values())
        assert simulations == 1, (
            f"{DEDUP_BURST} identical concurrent predicts ran "
            f"{simulations} simulations (want exactly 1)")
        payloads = [{k: v for k, v in r.items() if k != "served"}
                    for r in burst]
        assert all(p == payloads[0] for p in payloads), (
            "coalesced responses differ from the leader's")

        # -- Concurrent throughput over the mixed workload. --------------
        elapsed = _drive_clients(address, workload)
        total_requests = CLIENTS * REQUESTS_PER_CLIENT
        req_per_s = total_requests / elapsed

        # -- Warm single-request latency vs the cold CLI. ----------------
        with ServeClient.connect(*address, timeout=10.0) as client:
            warm_s = float("inf")
            for _ in range(WARM_ROUNDS):
                tick = time.perf_counter()
                client.predict(preset=PRESET, granularity="stage")
                warm_s = min(warm_s, time.perf_counter() - tick)
            stats = client.stats()
    finally:
        daemon.stop()
        service.close()

    speedup = cold_s / warm_s
    predict_total = stats["requests"]["predict"]
    dedup = stats["dedup"]
    batch = stats["batch"]
    coalesced_rate = dedup["coalesced"] / predict_total
    cache_rate = dedup["cache_served"] / predict_total
    mean_batch = (batch["jobs"] / batch["flushes"]
                  if batch["flushes"] else 0.0)
    latency = stats["latency"]["predict_s"]

    entry = {
        "quick": QUICK,
        "clients": CLIENTS,
        "requests": total_requests,
        "cold_predict_s": round(cold_s, 6),
        "warm_predict_s": round(warm_s, 6),
        "warm_speedup": round(speedup, 3),
        "req_per_s": round(req_per_s, 3),
        "p50_s": round(latency["p50"], 6),
        "p99_s": round(latency["p99"], 6),
        "dedup_coalesced_rate": round(coalesced_rate, 4),
        "cache_served_rate": round(cache_rate, 4),
        "mean_batch_size": round(mean_batch, 3),
    }

    baseline = _baseline()
    emit_table(
        "service_throughput",
        "Serving tier: warm daemon vs cold one-shot CLI",
        [entry | {"baseline_speedup":
                  baseline["warm_speedup"] if baseline
                  else entry["warm_speedup"]}],
        notes="cold = full `repro predict` subprocess; warm = one predict "
              "round trip against the resident daemon (loopback TCP); "
              "p50/p99 from the daemon's serve.predict_s histogram")

    # -- Gates. -----------------------------------------------------------
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm served predict only {speedup:.1f}x faster than a cold CLI "
        f"one-shot (need >= {MIN_WARM_SPEEDUP}x)")
    assert req_per_s >= MIN_WARM_REQ_PER_S, (
        f"concurrent warm throughput {req_per_s:.1f} req/s is below the "
        f"{MIN_WARM_REQ_PER_S} req/s floor")
    if baseline is not None:
        floor = baseline["warm_speedup"] / REGRESSION_HEADROOM
        assert speedup >= floor, (
            f"warm speedup {speedup:.1f}x fell more than "
            f"{REGRESSION_HEADROOM}x below the committed baseline "
            f"{baseline['warm_speedup']}x")

    # Record only passing runs.
    _record(entry)
    obs.reset()
