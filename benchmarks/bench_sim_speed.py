"""Section III-F: profiling cost and simulation speed.

The paper reports ~2 seconds per MT-NLG-scale simulation on a server CPU
and O(1) profiling cost thanks to the necessary-operator optimisation.
This bench measures our simulator's per-prediction latency at each graph
granularity (with warm profiles, the DSE regime), verifies the O(1)
profiling property, and gates the compiled replay core against
regressions:

* ``test_warm_predict_speedup_and_regression_gate`` measures a warm
  OPERATOR-granularity ``predict`` on the MT-NLG (8, 8, 35) plan — the
  structure-cache fast path (duration refill + compiled replay) — against
  the pre-split cost of the same prediction (full graph rebuild + the
  reference Algorithm-1 loop). It asserts the >= 3x speedup the
  structure/timing split promises, appends the measurement to the perf
  trajectory in ``benchmarks/results/BENCH_sim_speed.json``, and fails
  if the warm-predict latency regressed more than 25 % against the
  committed baseline (the trajectory's first entry). The gated metric is
  the *ratio* warm/reference measured in the same process, so the gate
  is insensitive to how fast the CI machine happens to be.

* ``test_batch_retime_throughput_and_regression_gate`` measures batched
  replay throughput (retimes/s) on the same warm MT-NLG structure: N=64
  duration columns through one ``simulate_retimed_batch`` sweep against
  scalar ``simulate_retimed`` replays of the same columns. It asserts
  the >= 5x per-column speedup the vectorized engine promises, verifies
  the batch columns are bit-identical to the scalar replays it timed,
  appends to the ``batch_retime`` trajectory in the same JSON store,
  and fails if the batch-throughput ratio regressed more than 25 %
  against its committed baseline. Like the warm gate, the gated metric
  is a same-process ratio, insensitive to absolute machine speed.

Set ``REPRO_BENCH_QUICK=1`` for the CI smoke/perf lanes (fewer timing
rounds; the model and plan stay MT-NLG-sized so the gates measure the
real workload).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
from _helpers import emit_table

from repro import obs
from repro.config.presets import (MT_NLG_530B, MT_NLG_BASELINE_PLANS,
                                  MT_NLG_TRAINING)
from repro.config.system import multi_node
from repro.graph.builder import Granularity
from repro.sim.engine import (simulate_reference, simulate_retimed,
                              simulate_retimed_batch)
from repro.sim.estimator import VTrain

PLAN = MT_NLG_BASELINE_PLANS[0]  # (8, 8, 35) on 2,240 GPUs

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
BENCH_FILE = Path(__file__).parent / "results" / "BENCH_sim_speed.json"
BENCH_SCHEMA = 2
#: Allowed regression vs a committed baseline's gated ratio.
REGRESSION_HEADROOM = 1.25
#: Tighter bound for the observability instrumentation specifically:
#: with the obs switch off (the default), the instrumented warm-predict
#: path must stay within 3% of the committed baseline ratio, so spans
#: and histograms on the hot path can never silently tax the PR-3/PR-6
#: wins. (The 1.25x gate above still catches catastrophic regressions
#: when obs is force-enabled for a profiling run.)
OBS_DISABLED_HEADROOM = 1.03
#: Minimum speedup of the structure-cache warm path over a full
#: rebuild + reference replay (the acceptance bar for the split).
MIN_SPEEDUP = 3.0
#: Minimum per-column speedup of the batched sweep over scalar replays
#: (the acceptance bar for the vectorized batch-retime engine).
MIN_BATCH_SPEEDUP = 5.0
#: Columns per batched replay in the throughput gate.
BATCH_COLUMNS = 64
#: Keep each perf trajectory bounded.
TRAJECTORY_LIMIT = 50


def _simulator(granularity):
    system = multi_node(PLAN.total_gpus // 8)
    vtrain = VTrain(system, granularity=granularity)
    vtrain.predict(MT_NLG_530B, PLAN, MT_NLG_TRAINING)  # warm profiles
    return vtrain


def test_sim_speed_stage_granularity(benchmark):
    vtrain = _simulator(Granularity.STAGE)
    prediction = benchmark(
        lambda: vtrain.predict(MT_NLG_530B, PLAN, MT_NLG_TRAINING))
    stats = vtrain.profiling_stats
    emit_table("sim_speed_stage", "Simulation speed: STAGE granularity",
               [{"tasks": prediction.simulation.num_tasks,
                 "operators_profiled": stats["operators_profiled"],
                 "structure_cache_hits": stats["structure_cache_hits"]}],
               notes="paper: ~2 s per simulation on a 32-core CPU; the "
                     "stage fast path is what makes 200-second full-space "
                     "DSE possible")
    assert prediction.iteration_time > 0
    # O(1) profiling: a 105-layer, 240-micro-batch model profiled only a
    # handful of necessary operators.
    assert stats["operators_profiled"] < 20


def test_sim_speed_operator_granularity(benchmark):
    vtrain = _simulator(Granularity.OPERATOR)
    prediction = benchmark.pedantic(
        lambda: vtrain.predict(MT_NLG_530B, PLAN, MT_NLG_TRAINING),
        rounds=3, iterations=1)
    emit_table("sim_speed_operator",
               "Simulation speed: OPERATOR granularity",
               [{"tasks": prediction.simulation.num_tasks}])
    assert prediction.simulation.num_tasks > 100_000


def _load_store():
    """The perf-trajectory store, migrating the schema-1 layout in place.

    Schema 1 held a single warm-predict trajectory at the top level;
    schema 2 keys one trajectory per benchmark under ``benchmarks`` so
    the batch-retime gate shares the file. A schema-1 baseline becomes
    the ``warm_predict`` section unchanged — its committed entries (and
    the gate that compares against ``entries[0]``) carry over.
    """
    if not BENCH_FILE.exists():
        return {"schema": BENCH_SCHEMA, "benchmarks": {}}
    payload = json.loads(BENCH_FILE.read_text())
    if payload.get("schema") == 1 and payload.get("entries"):
        section = {"benchmark": payload.get("benchmark",
                                            "sim_speed_warm_predict"),
                   "gated_metric": payload.get("gated_metric",
                                               "warm_over_reference"),
                   "regression_headroom": payload.get("regression_headroom",
                                                      REGRESSION_HEADROOM),
                   "entries": payload["entries"]}
        return {"schema": BENCH_SCHEMA,
                "benchmarks": {"warm_predict": section}}
    if payload.get("schema") != BENCH_SCHEMA:
        return {"schema": BENCH_SCHEMA, "benchmarks": {}}
    payload.setdefault("benchmarks", {})
    return payload


def _record(section_name, defaults, entry):
    """Append a passing entry to one trajectory and save the store.

    Always keeps ``entries[0]`` — the committed baseline the gates
    compare against — when truncating to ``TRAJECTORY_LIMIT``.
    """
    store = _load_store()
    section = store["benchmarks"].setdefault(section_name,
                                             defaults | {"entries": []})
    tail = section["entries"][1:] + [entry]
    section["entries"] = (section["entries"][:1]
                          + tail[-(TRAJECTORY_LIMIT - 1):])
    BENCH_FILE.parent.mkdir(exist_ok=True)
    BENCH_FILE.write_text(json.dumps(store, indent=1) + "\n")


def _baseline(section_name):
    section = _load_store()["benchmarks"].get(section_name)
    if section is None or not section["entries"]:
        return None
    return section["entries"][0]


def test_warm_predict_speedup_and_regression_gate():
    """Structure-cache warm predict vs pre-split rebuild-every-time."""
    rounds = 3 if QUICK else 5
    vtrain = _simulator(Granularity.OPERATOR)  # also caches the structure

    warm_s = min(_timed(lambda: vtrain.predict(
        MT_NLG_530B, PLAN, MT_NLG_TRAINING)) for _ in range(rounds))
    assert vtrain.last_predict_timing.structure_cache_hit

    # What the same warm prediction cost before the split: rebuild the
    # ExecutionGraph from scratch, replay it with the reference engine.
    tick = time.perf_counter()
    graph = vtrain.build_graph(MT_NLG_530B, PLAN, MT_NLG_TRAINING)
    build_s = time.perf_counter() - tick
    replay_s = min(_timed(lambda: simulate_reference(graph))
                   for _ in range(rounds))
    reference_s = build_s + replay_s

    speedup = reference_s / warm_s
    ratio = warm_s / reference_s
    entry = {
        "quick": QUICK,
        "tasks": len(graph),
        "warm_predict_s": round(warm_s, 6),
        "reference_s": round(reference_s, 6),
        "speedup": round(speedup, 3),
        "warm_over_reference": round(ratio, 6),
    }

    baseline = _baseline("warm_predict")
    emit_table("sim_speed_warm",
               "Warm predict: structure cache vs full rebuild",
               [entry | {"baseline_ratio":
                         baseline["warm_over_reference"] if baseline
                         else entry["warm_over_reference"]}],
               notes="warm = memory check + duration refill + compiled "
                     "replay; reference = graph rebuild + reference "
                     "Algorithm-1 loop (the pre-split warm-predict cost)")

    assert speedup >= MIN_SPEEDUP, (
        f"warm predict only {speedup:.2f}x faster than a rebuild "
        f"(need >= {MIN_SPEEDUP}x)")
    if baseline is not None:
        limit = baseline["warm_over_reference"] * REGRESSION_HEADROOM
        assert ratio <= limit, (
            f"warm-predict latency regressed: warm/reference {ratio:.4f} "
            f"exceeds committed baseline {baseline['warm_over_reference']} "
            f"by more than {REGRESSION_HEADROOM}x")
        if not obs.enabled():
            obs_limit = (baseline["warm_over_reference"]
                         * OBS_DISABLED_HEADROOM)
            assert ratio <= obs_limit, (
                f"disabled observability is taxing warm predict: "
                f"warm/reference {ratio:.4f} exceeds committed baseline "
                f"{baseline['warm_over_reference']} by more than "
                f"{OBS_DISABLED_HEADROOM}x — instrumentation must be "
                f"free when off")

    # Record only passing runs.
    _record("warm_predict",
            {"benchmark": "sim_speed_warm_predict",
             "gated_metric": "warm_over_reference",
             "regression_headroom": REGRESSION_HEADROOM},
            entry)


def test_batch_retime_throughput_and_regression_gate():
    """Batched replay (N=64) vs scalar replays of the same columns."""
    rounds = 3 if QUICK else 5
    scalar_columns = 8 if QUICK else 16
    vtrain = _simulator(Granularity.OPERATOR)
    prepared = vtrain.prepare(MT_NLG_530B, PLAN, MT_NLG_TRAINING)
    structure = prepared.structure

    # A realistic retiming batch: per-column perturbations of the warm
    # duration vector, as a DSE affinity group or a testbed sampling
    # campaign would submit.
    base = np.asarray(prepared.durations, dtype=np.float64)
    rng = np.random.default_rng(0)
    matrix = np.ascontiguousarray(
        base[:, None] * rng.uniform(0.9, 1.1,
                                    (structure.num_tasks, BATCH_COLUMNS)))
    structure.batch_plan()  # compile the chunked schedule outside timing

    scalar_results = [simulate_retimed(structure,
                                       np.ascontiguousarray(matrix[:, col]))
                      for col in range(scalar_columns)]
    scalar_s = min(_timed(lambda: [
        simulate_retimed(structure, np.ascontiguousarray(matrix[:, col]))
        for col in range(scalar_columns)]) for _ in range(rounds))
    scalar_per_retime = scalar_s / scalar_columns

    batch = simulate_retimed_batch(structure, matrix)
    batch_s = min(_timed(lambda: simulate_retimed_batch(structure, matrix))
                  for _ in range(rounds))
    batch_per_retime = batch_s / BATCH_COLUMNS

    # The speedup only counts if the batch really is the same replay.
    for col, scalar in enumerate(scalar_results):
        assert batch.makespans[col] == scalar.iteration_time, col

    speedup = scalar_per_retime / batch_per_retime
    entry = {
        "quick": QUICK,
        "tasks": structure.num_tasks,
        "batch_columns": BATCH_COLUMNS,
        "retimes_per_s_scalar": round(1.0 / scalar_per_retime, 3),
        "retimes_per_s_batch": round(BATCH_COLUMNS / batch_s, 3),
        "scalar_retime_s": round(scalar_per_retime, 6),
        "batch_retime_s_per_column": round(batch_per_retime, 6),
        "batch_speedup": round(speedup, 3),
    }

    baseline = _baseline("batch_retime")
    emit_table("sim_speed_batch",
               "Batched retime: one N=64 sweep vs scalar replays",
               [entry | {"baseline_speedup":
                         baseline["batch_speedup"] if baseline
                         else entry["batch_speedup"]}],
               notes="retimes/s on the warm MT-NLG (8, 8, 35) OPERATOR "
                     "structure; batch columns verified bit-identical "
                     "to the scalar replays they are timed against")

    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"batched retime only {speedup:.2f}x scalar throughput "
        f"(need >= {MIN_BATCH_SPEEDUP}x per column at N={BATCH_COLUMNS})")
    if baseline is not None:
        floor = baseline["batch_speedup"] / REGRESSION_HEADROOM
        assert speedup >= floor, (
            f"batch throughput regressed: speedup {speedup:.2f}x is more "
            f"than {REGRESSION_HEADROOM}x below the committed baseline "
            f"{baseline['batch_speedup']}x")

    # Record only passing runs.
    _record("batch_retime",
            {"benchmark": "sim_speed_batch_retime",
             "gated_metric": "batch_speedup",
             "min_speedup": MIN_BATCH_SPEEDUP,
             "regression_headroom": REGRESSION_HEADROOM},
            entry)


def _timed(thunk):
    tick = time.perf_counter()
    thunk()
    return time.perf_counter() - tick
