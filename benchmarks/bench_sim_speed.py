"""Section III-F: profiling cost and simulation speed.

The paper reports ~2 seconds per MT-NLG-scale simulation on a server CPU
and O(1) profiling cost thanks to the necessary-operator optimisation.
This bench measures our simulator's per-prediction latency at each graph
granularity (with warm profiles, the DSE regime) and verifies the O(1)
profiling property.
"""

from _helpers import emit_table

from repro.config.presets import (MT_NLG_530B, MT_NLG_BASELINE_PLANS,
                                  MT_NLG_TRAINING)
from repro.config.system import multi_node
from repro.graph.builder import Granularity
from repro.sim.estimator import VTrain

PLAN = MT_NLG_BASELINE_PLANS[0]  # (8, 8, 35) on 2,240 GPUs


def _simulator(granularity):
    system = multi_node(PLAN.total_gpus // 8)
    vtrain = VTrain(system, granularity=granularity)
    vtrain.predict(MT_NLG_530B, PLAN, MT_NLG_TRAINING)  # warm profiles
    return vtrain


def test_sim_speed_stage_granularity(benchmark):
    vtrain = _simulator(Granularity.STAGE)
    prediction = benchmark(
        lambda: vtrain.predict(MT_NLG_530B, PLAN, MT_NLG_TRAINING))
    stats = vtrain.profiling_stats
    emit_table("sim_speed_stage", "Simulation speed: STAGE granularity",
               [{"tasks": prediction.simulation.num_tasks,
                 "operators_profiled": stats["operators_profiled"],
                 "lookups_reused": stats["lookups_served_from_table"]}],
               notes="paper: ~2 s per simulation on a 32-core CPU; the "
                     "stage fast path is what makes 200-second full-space "
                     "DSE possible")
    assert prediction.iteration_time > 0
    # O(1) profiling: a 105-layer, 240-micro-batch model profiled only a
    # handful of necessary operators.
    assert stats["operators_profiled"] < 20


def test_sim_speed_operator_granularity(benchmark):
    vtrain = _simulator(Granularity.OPERATOR)
    prediction = benchmark.pedantic(
        lambda: vtrain.predict(MT_NLG_530B, PLAN, MT_NLG_TRAINING),
        rounds=3, iterations=1)
    emit_table("sim_speed_operator",
               "Simulation speed: OPERATOR granularity",
               [{"tasks": prediction.simulation.num_tasks}])
    assert prediction.simulation.num_tasks > 100_000
