"""Section III-F: profiling cost and simulation speed.

The paper reports ~2 seconds per MT-NLG-scale simulation on a server CPU
and O(1) profiling cost thanks to the necessary-operator optimisation.
This bench measures our simulator's per-prediction latency at each graph
granularity (with warm profiles, the DSE regime), verifies the O(1)
profiling property, and gates the compiled replay core against
regressions:

* ``test_warm_predict_speedup_and_regression_gate`` measures a warm
  OPERATOR-granularity ``predict`` on the MT-NLG (8, 8, 35) plan — the
  structure-cache fast path (duration refill + compiled replay) — against
  the pre-split cost of the same prediction (full graph rebuild + the
  reference Algorithm-1 loop). It asserts the >= 3x speedup the
  structure/timing split promises, appends the measurement to the perf
  trajectory in ``benchmarks/results/BENCH_sim_speed.json``, and fails
  if the warm-predict latency regressed more than 25 % against the
  committed baseline (the trajectory's first entry). The gated metric is
  the *ratio* warm/reference measured in the same process, so the gate
  is insensitive to how fast the CI machine happens to be.

Set ``REPRO_BENCH_QUICK=1`` for the CI smoke/perf lanes (fewer timing
rounds; the model and plan stay MT-NLG-sized so the gate measures the
real workload).
"""

import json
import os
import time
from pathlib import Path

from _helpers import emit_table

from repro.config.presets import (MT_NLG_530B, MT_NLG_BASELINE_PLANS,
                                  MT_NLG_TRAINING)
from repro.config.system import multi_node
from repro.graph.builder import Granularity
from repro.sim.engine import simulate_reference
from repro.sim.estimator import VTrain

PLAN = MT_NLG_BASELINE_PLANS[0]  # (8, 8, 35) on 2,240 GPUs

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
BENCH_FILE = Path(__file__).parent / "results" / "BENCH_sim_speed.json"
BENCH_SCHEMA = 1
#: Allowed warm/reference slowdown vs the committed baseline ratio.
REGRESSION_HEADROOM = 1.25
#: Minimum speedup of the structure-cache warm path over a full
#: rebuild + reference replay (the acceptance bar for the split).
MIN_SPEEDUP = 3.0
#: Keep the perf trajectory bounded.
TRAJECTORY_LIMIT = 50


def _simulator(granularity):
    system = multi_node(PLAN.total_gpus // 8)
    vtrain = VTrain(system, granularity=granularity)
    vtrain.predict(MT_NLG_530B, PLAN, MT_NLG_TRAINING)  # warm profiles
    return vtrain


def test_sim_speed_stage_granularity(benchmark):
    vtrain = _simulator(Granularity.STAGE)
    prediction = benchmark(
        lambda: vtrain.predict(MT_NLG_530B, PLAN, MT_NLG_TRAINING))
    stats = vtrain.profiling_stats
    emit_table("sim_speed_stage", "Simulation speed: STAGE granularity",
               [{"tasks": prediction.simulation.num_tasks,
                 "operators_profiled": stats["operators_profiled"],
                 "structure_cache_hits": stats["structure_cache_hits"]}],
               notes="paper: ~2 s per simulation on a 32-core CPU; the "
                     "stage fast path is what makes 200-second full-space "
                     "DSE possible")
    assert prediction.iteration_time > 0
    # O(1) profiling: a 105-layer, 240-micro-batch model profiled only a
    # handful of necessary operators.
    assert stats["operators_profiled"] < 20


def test_sim_speed_operator_granularity(benchmark):
    vtrain = _simulator(Granularity.OPERATOR)
    prediction = benchmark.pedantic(
        lambda: vtrain.predict(MT_NLG_530B, PLAN, MT_NLG_TRAINING),
        rounds=3, iterations=1)
    emit_table("sim_speed_operator",
               "Simulation speed: OPERATOR granularity",
               [{"tasks": prediction.simulation.num_tasks}])
    assert prediction.simulation.num_tasks > 100_000


def _load_trajectory():
    if not BENCH_FILE.exists():
        return None
    payload = json.loads(BENCH_FILE.read_text())
    if payload.get("schema") != BENCH_SCHEMA or not payload.get("entries"):
        return None
    return payload


def test_warm_predict_speedup_and_regression_gate():
    """Structure-cache warm predict vs pre-split rebuild-every-time."""
    rounds = 3 if QUICK else 5
    vtrain = _simulator(Granularity.OPERATOR)  # also caches the structure

    warm_s = min(_timed(lambda: vtrain.predict(
        MT_NLG_530B, PLAN, MT_NLG_TRAINING)) for _ in range(rounds))
    assert vtrain.last_predict_timing.structure_cache_hit

    # What the same warm prediction cost before the split: rebuild the
    # ExecutionGraph from scratch, replay it with the reference engine.
    tick = time.perf_counter()
    graph = vtrain.build_graph(MT_NLG_530B, PLAN, MT_NLG_TRAINING)
    build_s = time.perf_counter() - tick
    replay_s = min(_timed(lambda: simulate_reference(graph))
                   for _ in range(rounds))
    reference_s = build_s + replay_s

    speedup = reference_s / warm_s
    ratio = warm_s / reference_s
    entry = {
        "quick": QUICK,
        "tasks": len(graph),
        "warm_predict_s": round(warm_s, 6),
        "reference_s": round(reference_s, 6),
        "speedup": round(speedup, 3),
        "warm_over_reference": round(ratio, 6),
    }

    trajectory = _load_trajectory()
    baseline = trajectory["entries"][0] if trajectory else None
    if trajectory is None:
        trajectory = {"schema": BENCH_SCHEMA,
                      "benchmark": "sim_speed_warm_predict",
                      "gated_metric": "warm_over_reference",
                      "regression_headroom": REGRESSION_HEADROOM,
                      "entries": []}

    emit_table("sim_speed_warm",
               "Warm predict: structure cache vs full rebuild",
               [entry | {"baseline_ratio":
                         baseline["warm_over_reference"] if baseline
                         else entry["warm_over_reference"]}],
               notes="warm = memory check + duration refill + compiled "
                     "replay; reference = graph rebuild + reference "
                     "Algorithm-1 loop (the pre-split warm-predict cost)")

    assert speedup >= MIN_SPEEDUP, (
        f"warm predict only {speedup:.2f}x faster than a rebuild "
        f"(need >= {MIN_SPEEDUP}x)")
    if baseline is not None:
        limit = baseline["warm_over_reference"] * REGRESSION_HEADROOM
        assert ratio <= limit, (
            f"warm-predict latency regressed: warm/reference {ratio:.4f} "
            f"exceeds committed baseline {baseline['warm_over_reference']} "
            f"by more than {REGRESSION_HEADROOM}x")

    # Record only passing runs, and always keep entries[0] — the
    # committed baseline the gate compares against — when truncating.
    tail = trajectory["entries"][1:] + [entry]
    trajectory["entries"] = (trajectory["entries"][:1]
                             + tail[-(TRAJECTORY_LIMIT - 1):])
    BENCH_FILE.parent.mkdir(exist_ok=True)
    BENCH_FILE.write_text(json.dumps(trajectory, indent=1) + "\n")


def _timed(thunk):
    tick = time.perf_counter()
    thunk()
    return time.perf_counter() - tick
